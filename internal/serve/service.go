package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/noise"
	"repro/internal/qasm"
	"repro/internal/rng"
)

// Config shapes a Service.
type Config struct {
	// Target is the execution shape every circuit compiles for (kind,
	// fusion width, node count, emulation mode); NumQubits is taken from
	// each circuit. The zero value is the single-node fused simulator.
	Target backend.Target
	// CacheBytes is the session-memory budget of the artifact cache
	// (CostOf accounting); 0 defaults to 2 GiB (a 27-qubit state).
	CacheBytes uint64
	// PersistDir, when non-empty, enables on-disk artifact persistence
	// and warm starts.
	PersistDir string
	// TotalWorkers caps the summed workers weight of concurrently
	// executing requests; 0 defaults to GOMAXPROCS.
	TotalWorkers int
	// MaxShots bounds one request's sample draw; 0 defaults to 1<<20.
	MaxShots int
}

// DefaultCacheBytes is the cache budget when Config leaves it zero.
const DefaultCacheBytes = 1 << 31

// defaultMaxShots bounds a single request's draw when unconfigured.
const defaultMaxShots = 1 << 20

// Service is the compile-once/run-many engine behind the HTTP daemon:
// a fingerprint-keyed artifact cache, one prepared session per cached
// circuit, a single-flight compile path and a weighted admission
// semaphore. Safe for concurrent use.
type Service struct {
	cfg   Config
	cache *Cache
	sem   *wsem

	mu       sync.Mutex
	inflight map[string]*flight // guarded by mu

	compiles atomic.Uint64 // pass-pipeline invocations (cache hits skip it)
	requests atomic.Uint64
	shots    atomic.Uint64
}

// flight is one in-progress compile other requests for the same key
// wait on instead of compiling again.
type flight struct {
	done chan struct{}
	err  error
}

// New builds a service and, when persistence is configured, warm-starts
// the cache from disk.
func New(cfg Config) (*Service, error) {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.TotalWorkers <= 0 {
		cfg.TotalWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxShots <= 0 {
		cfg.MaxShots = defaultMaxShots
	}
	s := &Service{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheBytes, cfg.PersistDir),
		sem:      newWsem(cfg.TotalWorkers),
		inflight: make(map[string]*flight),
	}
	if _, err := s.cache.WarmStart(s.admitDecoded); err != nil {
		return nil, err
	}
	return s, nil
}

// admitDecoded vets a decoded artifact before it enters the cache: the
// structural verifier plus the embedded-key check (crc32 alone cannot
// catch a renamed file or a semantically corrupt body that re-checksums
// cleanly), then the worker clamp — a .qexe dictates its circuit and
// shape, never this service's concurrency, so whatever worker budget it
// was compiled under is replaced by the service's own before the target
// reaches backend.New.
func (s *Service) admitDecoded(key string, x *backend.Executable) error {
	if err := backend.VerifyExecutableKey(x, key); err != nil {
		return err
	}
	x.Target.Workers = s.cfg.Target.Workers
	return nil
}

// Cache exposes the artifact cache (stats, tests).
func (s *Service) Cache() *Cache { return s.cache }

// Compiles returns how many times the pass pipeline actually ran —
// the counter the cache-hit tests pin at 1 across repeated requests.
func (s *Service) Compiles() uint64 { return s.compiles.Load() }

// CompileResult reports one compile (or cache hit) to the client.
type CompileResult struct {
	Key           string `json:"key"`
	Cached        bool   `json:"cached"`
	NumQubits     uint   `json:"num_qubits"`
	NumGates      int    `json:"num_gates"`
	EmulatedGates int    `json:"emulated_gates"`
	FusedBlocks   int    `json:"fused_blocks"`
	PlannedRounds int    `json:"planned_rounds"`
}

// Compile parses qasm source, compiles it once (or hits the cache) and
// reports the artifact key run requests can use.
func (s *Service) Compile(qasmSrc string) (*CompileResult, error) {
	art, compiled, err := s.resolve(qasmSrc, "")
	if err != nil {
		return nil, err
	}
	defer s.cache.Release(art)
	x := art.Executable()
	return &CompileResult{
		Key: art.Key(), Cached: !compiled,
		NumQubits: x.NumQubits, NumGates: x.NumGates,
		EmulatedGates: x.EmulatedGates, FusedBlocks: x.FusedBlocks,
		PlannedRounds: x.PlannedRounds,
	}, nil
}

// RunRequest asks for shot samples from a circuit, addressed by qasm
// source or by a previously returned key.
type RunRequest struct {
	Qasm string `json:"qasm,omitempty"`
	Key  string `json:"key,omitempty"`
	// Shots is the number of samples to draw (default 1). Mutually
	// exclusive with Trajectories.
	Shots int `json:"shots,omitempty"`
	// Seed fixes the sample stream: one seed always yields the same
	// draws for a circuit, independent of request interleaving. For
	// trajectory batches it also fixes every noise realisation.
	Seed uint64 `json:"seed,omitempty"`
	// Workers is the share of the service's worker budget this request
	// occupies while executing (default 1, clamped to the budget). A
	// trajectory batch stripes its trajectories over this many parallel
	// sessions.
	Workers int `json:"workers,omitempty"`
	// Trajectories, when positive, switches the request to stochastic-
	// trajectory noisy simulation: the cached artifact is replayed once
	// per trajectory with sampled Kraus jumps, and Samples carries one
	// outcome per trajectory. The compile still happens once per
	// artifact, however many trajectories are requested.
	Trajectories int `json:"trajectories,omitempty"`
	// Noise attaches a global after-each-gate channel, "kind:p" (e.g.
	// "depolarizing:0.001"), to a qasm-addressed request before
	// compilation; the channel becomes part of the cache key. Requires
	// Trajectories, and cannot combine with Key — a key names an
	// already-compiled artifact, noise model included.
	Noise string `json:"noise,omitempty"`
}

// RunResult carries the drawn samples.
type RunResult struct {
	Key           string   `json:"key"`
	Cached        bool     `json:"cached"`
	NumQubits     uint     `json:"num_qubits"`
	EmulatedGates int      `json:"emulated_gates"`
	Samples       []uint64 `json:"samples"`
	WallNs        int64    `json:"wall_ns"`
	// Trajectory batches only: the batch size, the plan's insertion
	// points per trajectory, and the total sampled jumps.
	Trajectories int    `json:"trajectories,omitempty"`
	NoisePoints  int    `json:"noise_points,omitempty"`
	Jumps        uint64 `json:"jumps,omitempty"`
}

// ErrUnknownKey rejects run requests naming a key the cache does not
// hold (expired or never compiled) without qasm source to fall back on.
var ErrUnknownKey = errors.New("serve: unknown artifact key")

// badRequestError marks client mistakes (unparseable qasm, malformed
// requests) so the HTTP layer can map them to 4xx statuses.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error { return badRequestError{err} }

// IsBadRequest reports whether err is the client's fault.
func IsBadRequest(err error) bool {
	var b badRequestError
	return errors.As(err, &b)
}

// verifyRejectedError marks an artifact the structural verifier refused:
// syntactically decodable (the crc32 checked out) but semantically
// unsound. The HTTP layer maps it to 422 Unprocessable Entity, distinct
// from the 400 of a body that is not an artifact at all.
type verifyRejectedError struct{ err error }

func (e verifyRejectedError) Error() string { return e.err.Error() }
func (e verifyRejectedError) Unwrap() error { return e.err }

func verifyRejected(err error) error { return verifyRejectedError{err} }

// IsVerifyRejected reports whether err is a structural-verifier
// rejection of an uploaded artifact.
func IsVerifyRejected(err error) bool {
	var v verifyRejectedError
	return errors.As(err, &v)
}

// ArtifactResult reports one artifact upload.
type ArtifactResult struct {
	Key       string `json:"key"`
	Cached    bool   `json:"cached"`
	NumQubits uint   `json:"num_qubits"`
	NumGates  int    `json:"num_gates"`
}

// AdmitArtifact decodes an encoded executable (a .qexe body), runs the
// structural verifier over it, and admits it into the cache under its
// embedded source key — the upload path of a compile-once/run-anywhere
// fleet: compile on a build host, POST the artifact, run by key. A body
// that does not decode is a bad request (400); one that decodes but
// fails verification is a typed verifier rejection (422). Both checks
// complete before any session memory is pinned — a rejected artifact
// never reaches backend.New, the cache table, or the persistence
// directory.
func (s *Service) AdmitArtifact(data []byte) (*ArtifactResult, error) {
	x, err := backend.Decode(data)
	if err != nil {
		return nil, badRequest(err)
	}
	if err := backend.VerifyExecutable(x); err != nil {
		return nil, verifyRejected(err)
	}
	key := x.SourceKey
	x.Target.Workers = s.cfg.Target.Workers
	if a, ok := s.cache.Get(key); ok {
		defer s.cache.Release(a)
		resident := a.Executable()
		return &ArtifactResult{Key: key, Cached: true,
			NumQubits: resident.NumQubits, NumGates: resident.NumGates}, nil
	}
	a, err := s.cache.Put(key, x)
	if err != nil {
		return nil, badRequest(err) // ErrTooLarge/ErrNoRoom: cannot host it
	}
	defer s.cache.Release(a)
	return &ArtifactResult{Key: key, Cached: false,
		NumQubits: x.NumQubits, NumGates: x.NumGates}, nil
}

// Run serves one shot request: resolve the artifact (compiling only on
// a cache miss), take the request's share of the worker budget, ensure
// the session has executed the circuit, and draw the samples. Requests
// with Trajectories set run the stochastic-trajectory path instead:
// the same cached artifact is replayed once per trajectory with sampled
// Kraus jumps, so an N-trajectory batch still compiles exactly once.
func (s *Service) Run(req RunRequest) (*RunResult, error) {
	s.requests.Add(1)
	start := time.Now()
	batch := req.Trajectories > 0
	if batch && req.Shots > 0 {
		return nil, badRequest(errors.New("serve: shots and trajectories are mutually exclusive"))
	}
	if req.Noise != "" {
		if !batch {
			return nil, badRequest(errors.New("serve: a noise spec needs trajectories (ideal sampling ignores noise)"))
		}
		if req.Key != "" {
			return nil, badRequest(errors.New("serve: a noise spec needs qasm addressing — a key names an already-compiled artifact, noise model included"))
		}
	}
	shots := req.Shots
	if batch {
		shots = req.Trajectories
	}
	if shots <= 0 {
		shots = 1
	}
	if shots > s.cfg.MaxShots {
		return nil, badRequest(fmt.Errorf("serve: %d shots exceeds the per-request limit %d", shots, s.cfg.MaxShots))
	}

	var art *Artifact
	var compiled bool
	switch {
	case req.Key != "":
		a, ok := s.cache.Get(req.Key)
		if !ok {
			return nil, ErrUnknownKey
		}
		art = a
	case req.Qasm != "":
		a, c, err := s.resolve(req.Qasm, req.Noise)
		if err != nil {
			return nil, err
		}
		art, compiled = a, c
	default:
		return nil, badRequest(errors.New("serve: run request needs qasm or key"))
	}
	defer s.cache.Release(art)

	weight := s.sem.acquire(req.Workers)
	defer s.sem.release(weight)

	x := art.Executable()
	if batch {
		// The batch's trajectory workers each pin a fresh session state
		// beyond the artifact's own; account them against the cache's
		// session-memory budget for the duration.
		release, err := s.cache.ReserveSessions(art.Cost(), weight)
		if err != nil {
			return nil, badRequest(fmt.Errorf("serve: trajectory batch working set: %w", err))
		}
		defer release()
		tr, err := noise.Run(x, noise.Options{
			Trajectories: req.Trajectories, Seed: req.Seed, Workers: weight,
		})
		if err != nil {
			return nil, err
		}
		s.shots.Add(uint64(len(tr.Outcomes)))
		return &RunResult{
			Key: art.Key(), Cached: !compiled,
			NumQubits: x.NumQubits, EmulatedGates: x.EmulatedGates,
			Samples: tr.Outcomes, WallNs: time.Since(start).Nanoseconds(),
			Trajectories: len(tr.Outcomes), NoisePoints: tr.Points, Jumps: tr.Jumps,
		}, nil
	}

	samples, err := art.sample(shots, req.Seed)
	if err != nil {
		return nil, err
	}
	s.shots.Add(uint64(len(samples)))
	return &RunResult{
		Key: art.Key(), Cached: !compiled,
		NumQubits: x.NumQubits, EmulatedGates: x.EmulatedGates,
		Samples: samples, WallNs: time.Since(start).Nanoseconds(),
	}, nil
}

// sample ensures the session has executed the artifact, then draws
// shots from the held state. Sampling does not collapse the state, so
// one seed yields one stream regardless of interleaving; the session
// lock serialises access to the backend.
func (a *Artifact) sample(shots int, seed uint64) ([]uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.prepared {
		b, err := backend.New(a.exec.Target)
		if err != nil {
			return nil, err
		}
		if _, err := b.Run(a.exec); err != nil {
			b.Close()
			return nil, err
		}
		a.b = b
		a.prepared = true
	}
	return a.b.SampleMany(shots, rng.New(seed)), nil
}

// resolve parses qasm, attaches the optional noise spec, fingerprints
// the result against the service target and returns the pinned artifact
// — from the cache when resident, else compiled exactly once across
// concurrent requests (single-flight). The noise spec lands on the
// circuit before fingerprinting, so "same qasm, different channel" is a
// different cache entry. compiled reports whether this call ran the
// pass pipeline.
func (s *Service) resolve(qasmSrc, noiseSpec string) (art *Artifact, compiled bool, err error) {
	c, err := qasm.ParseString(qasmSrc)
	if err != nil {
		return nil, false, badRequest(err)
	}
	if err := noise.Attach(c, noiseSpec); err != nil {
		return nil, false, badRequest(err)
	}
	t := s.cfg.Target
	t.NumQubits = c.NumQubits
	key, err := backend.Fingerprint(c, t)
	if err != nil {
		return nil, false, err
	}
	for {
		if a, ok := s.cache.Get(key); ok {
			return a, false, nil
		}
		s.mu.Lock()
		if f, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, false, f.err
			}
			continue // the owner admitted it; hit the cache this time
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.mu.Unlock()

		x, cerr := backend.Compile(c, t)
		var a *Artifact
		if cerr == nil {
			s.compiles.Add(1)
			a, cerr = s.cache.Put(key, x)
			if errors.Is(cerr, ErrTooLarge) || errors.Is(cerr, ErrNoRoom) {
				// Serve the request from an uncached one-shot session
				// rather than thrashing the resident working set.
				a, cerr = Ephemeral(key, x), nil
			}
		}
		f.err = cerr
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(f.done)
		if cerr != nil {
			return nil, false, cerr
		}
		return a, true, nil
	}
}

// Stats is the service-level counter snapshot.
type Stats struct {
	Cache    CacheStats `json:"cache"`
	Compiles uint64     `json:"compiles"`
	Requests uint64     `json:"requests"`
	Shots    uint64     `json:"shots"`
}

// Stats returns the current counters.
func (s *Service) Stats() Stats {
	return Stats{
		Cache:    s.cache.Stats(),
		Compiles: s.compiles.Load(),
		Requests: s.requests.Load(),
		Shots:    s.shots.Load(),
	}
}

// Close retires the cache; sessions pinned by in-flight requests close
// as those requests finish.
func (s *Service) Close() error { return s.cache.Close() }

// wsem is a weighted semaphore: the summed weight of admitted holders
// never exceeds the capacity. Hand-rolled (no external deps) on a
// condition variable; fairness is best-effort, which is fine for
// bounding simulator concurrency.
type wsem struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int // guarded by mu
}

func newWsem(capacity int) *wsem {
	s := &wsem{cap: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire blocks until n units are free and returns the weight actually
// granted (n clamped to [1, cap]); pass it to release.
func (s *wsem) acquire(n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.cap {
		n = s.cap
	}
	s.mu.Lock()
	for s.used+n > s.cap {
		s.cond.Wait()
	}
	s.used += n
	s.mu.Unlock()
	return n
}

func (s *wsem) release(n int) {
	s.mu.Lock()
	s.used -= n
	s.mu.Unlock()
	s.cond.Broadcast()
}
