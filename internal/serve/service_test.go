package serve_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qasm"
	"repro/internal/qft"
	"repro/internal/recognize"
	"repro/internal/rng"
	"repro/internal/serve"
)

// qasmOf renders a circuit to the qasm text the service accepts.
func qasmOf(t *testing.T, c *circuit.Circuit) string {
	t.Helper()
	var b strings.Builder
	if err := qasm.Write(&b, c); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// testCircuit builds an n-qubit prep + QFT workload (recognisable
// structure, non-trivial final state) with a distinguishing phase so
// different variants fingerprint differently.
func testCircuit(n uint, variant int) *circuit.Circuit {
	c := circuit.New(n)
	for q := uint(0); q < n; q++ {
		c.Append(gates.H(q))
	}
	c.Append(gates.Phase(0, 0.1+float64(variant)))
	c.Extend(qft.Circuit(n))
	return c
}

// directSamples draws the reference stream the service must match:
// compile + run + sample on a plain backend with the same target shape
// and seed.
func directSamples(t *testing.T, c *circuit.Circuit, tgt backend.Target, shots int, seed uint64) []uint64 {
	t.Helper()
	tgt.NumQubits = c.NumQubits
	b, err := backend.New(tgt)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := backend.Execute(b, c); err != nil {
		t.Fatal(err)
	}
	return b.SampleMany(shots, rng.New(seed))
}

// TestServiceCacheHitSkipsCompile pins the tentpole property: after the
// first request compiles a circuit, every later request for it skips
// the pass pipeline entirely — the compile counter stays at 1.
func TestServiceCacheHitSkipsCompile(t *testing.T) {
	s, err := serve.New(serve.Config{Target: backend.Target{Emulate: recognize.Auto}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src := qasmOf(t, testCircuit(8, 0))
	for i := 0; i < 5; i++ {
		res, err := s.Run(serve.RunRequest{Qasm: src, Shots: 3, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if wantCached := i > 0; res.Cached != wantCached {
			t.Fatalf("request %d: cached = %v", i, res.Cached)
		}
	}
	if got := s.Compiles(); got != 1 {
		t.Fatalf("5 requests for one circuit ran the pipeline %d times, want 1", got)
	}
	st := s.Stats()
	if st.Requests != 5 || st.Cache.Hits != 4 {
		t.Fatalf("stats %+v: want 5 requests, 4 cache hits", st)
	}
}

// TestServiceMatchesDirectBackend: the served sample stream is
// draw-for-draw the stream a directly driven backend produces with the
// same target and seed — locally and on the distributed engine.
func TestServiceMatchesDirectBackend(t *testing.T) {
	for _, tgt := range []backend.Target{
		{Emulate: recognize.Auto, FuseWidth: 3},
		{Kind: backend.Cluster, Nodes: 2, Emulate: recognize.Auto},
	} {
		s, err := serve.New(serve.Config{Target: tgt})
		if err != nil {
			t.Fatal(err)
		}
		c := testCircuit(9, 1)
		res, err := s.Run(serve.RunRequest{Qasm: qasmOf(t, c), Shots: 50, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", tgt.Kind, err)
		}
		want := directSamples(t, c, tgt, 50, 7)
		for i := range want {
			if res.Samples[i] != want[i] {
				t.Fatalf("%v: served stream diverges from direct backend at draw %d", tgt.Kind, i)
			}
		}
		if res.EmulatedGates == 0 {
			t.Fatalf("%v: served run emulated nothing", tgt.Kind)
		}
		s.Close()
	}
}

// TestServiceRunByKey: a compile hands out a key, run-by-key serves
// from it, and unknown keys fail with ErrUnknownKey.
func TestServiceRunByKey(t *testing.T) {
	s, err := serve.New(serve.Config{Target: backend.Target{Emulate: recognize.Auto}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cr, err := s.Compile(qasmOf(t, testCircuit(8, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if cr.Cached || cr.EmulatedGates == 0 {
		t.Fatalf("first compile reported %+v", cr)
	}
	res, err := s.Run(serve.RunRequest{Key: cr.Key, Shots: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != cr.Key || len(res.Samples) != 10 {
		t.Fatalf("run by key returned %+v", res)
	}
	if _, err := s.Run(serve.RunRequest{Key: "no-such-key"}); !errors.Is(err, serve.ErrUnknownKey) {
		t.Fatalf("unknown key returned %v", err)
	}
	if got := s.Compiles(); got != 1 {
		t.Fatalf("run by key recompiled: %d pipeline runs", got)
	}
}

// TestServiceConcurrentRequests is the race suite: many goroutines
// hammer one service with interleaved compile and shot requests over a
// shared cached artifact, with per-request worker weights. Every
// request must succeed and every stream must match its seed's reference
// draw-for-draw, independent of interleaving. Run under -race in CI.
func TestServiceConcurrentRequests(t *testing.T) {
	tgt := backend.Target{Emulate: recognize.Auto, FuseWidth: 3}
	s, err := serve.New(serve.Config{Target: tgt, TotalWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	circuits := []*circuit.Circuit{testCircuit(8, 0), testCircuit(8, 1)}
	srcs := make([]string, len(circuits))
	refs := make([][][]uint64, len(circuits)) // refs[circuit][seed]
	const shots, seeds = 20, 4
	for i, c := range circuits {
		srcs[i] = qasmOf(t, c)
		refs[i] = make([][]uint64, seeds)
		for seed := 0; seed < seeds; seed++ {
			refs[i][seed] = directSamples(t, c, tgt, shots, uint64(seed))
		}
	}

	const workers, iters = 16, 12
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				ci := (g + it) % len(circuits)
				seed := (g * 31) % seeds
				if it%5 == 4 {
					// Interleave compile requests with shot requests.
					if _, err := s.Compile(srcs[ci]); err != nil {
						t.Errorf("goroutine %d: compile: %v", g, err)
						return
					}
					continue
				}
				res, err := s.Run(serve.RunRequest{
					Qasm: srcs[ci], Shots: shots, Seed: uint64(seed), Workers: 1 + g%3})
				if err != nil {
					t.Errorf("goroutine %d: run: %v", g, err)
					return
				}
				for i, v := range res.Samples {
					if v != refs[ci][seed][i] {
						t.Errorf("goroutine %d: circuit %d seed %d diverges at draw %d", g, ci, seed, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if got := s.Compiles(); got != uint64(len(circuits)) {
		t.Fatalf("%d circuits compiled %d times under concurrency", len(circuits), got)
	}
}

// TestServiceEvictionDuringRuns: a cache with room for one session at a
// time forces every request to fight over residency. Eviction must
// never free a session mid-run — every request still succeeds and every
// stream stays seed-faithful.
func TestServiceEvictionDuringRuns(t *testing.T) {
	tgt := backend.Target{Emulate: recognize.Auto}
	// Budget fits exactly one 8-qubit session (16<<8 bytes).
	s, err := serve.New(serve.Config{Target: tgt, CacheBytes: 16 << 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	circuits := []*circuit.Circuit{testCircuit(8, 0), testCircuit(8, 1), testCircuit(8, 2)}
	srcs := make([]string, len(circuits))
	refs := make([][]uint64, len(circuits))
	const shots = 10
	for i, c := range circuits {
		srcs[i] = qasmOf(t, c)
		refs[i] = directSamples(t, c, tgt, shots, 99)
	}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 8; it++ {
				ci := (g + it) % len(circuits)
				res, err := s.Run(serve.RunRequest{Qasm: srcs[ci], Shots: shots, Seed: 99})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				for i, v := range res.Samples {
					if v != refs[ci][i] {
						t.Errorf("goroutine %d: circuit %d diverges at draw %d after eviction churn", g, ci, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Cache.Evictions == 0 && st.Cache.Rejected == 0 {
		t.Fatalf("eviction churn never happened — budget too generous for the test: %+v", st)
	}
}

// TestServiceOversizedServedEphemerally: a circuit whose session
// exceeds the whole budget is still served — from an uncached session —
// and the resident set is never thrashed for it.
func TestServiceOversizedServedEphemerally(t *testing.T) {
	s, err := serve.New(serve.Config{Target: backend.Target{}, CacheBytes: 16 << 6})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src := qasmOf(t, testCircuit(8, 0)) // session costs 16<<8 > budget
	for i := 0; i < 2; i++ {
		if _, err := s.Run(serve.RunRequest{Qasm: src, Shots: 2, Seed: 1}); err != nil {
			t.Fatalf("oversized request %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Cache.Entries != 0 || st.Cache.Rejected < 2 {
		t.Fatalf("oversized artifact handling: %+v", st)
	}
}

// TestServicePersistentWarmStart: a service restarted over the same
// persistence directory serves its first request from the decoded
// artifact without recompiling.
func TestServicePersistentWarmStart(t *testing.T) {
	dir := t.TempDir()
	tgt := backend.Target{Emulate: recognize.Auto}
	c := testCircuit(8, 3)
	src := qasmOf(t, c)

	s1, err := serve.New(serve.Config{Target: tgt, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s1.Run(serve.RunRequest{Qasm: src, Shots: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, err := serve.New(serve.Config{Target: tgt, PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Run(serve.RunRequest{Qasm: src, Shots: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("warm-started service missed its own artifact")
	}
	if got := s2.Compiles(); got != 0 {
		t.Fatalf("warm-started service recompiled %d times", got)
	}
	for i := range first.Samples {
		if res.Samples[i] != first.Samples[i] {
			t.Fatalf("warm-started stream diverges at draw %d", i)
		}
	}
}
