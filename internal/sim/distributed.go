package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cluster"
	"repro/internal/fuse"
	"repro/internal/gates"
	"repro/internal/recognize"
	"repro/internal/statevec"
)

// Distributed is the Backend running circuits on the emulated cluster of
// internal/cluster: the register is sharded across Options.Nodes emulated
// nodes and whole circuits execute through the communication-avoiding
// placement scheduler (remote-qubit work batched into all-to-all remap
// rounds), consuming the same fusion plans as the single-node simulator.
type Distributed struct {
	c    *cluster.Cluster
	opts Options
}

// NewDistributed returns a distributed simulator over a fresh |0...0>
// register of n qubits, sharded according to opts (Nodes, MaxLocalQubits,
// Workers). Specialize is implied — the shards always run the structure-
// aware statevec kernels.
func NewDistributed(n uint, opts Options) (*Distributed, error) {
	p := opts.Nodes
	if p <= 0 {
		p = 1
	}
	if p&(p-1) != 0 {
		return nil, fmt.Errorf("sim: distributed node count %d is not a power of two", p)
	}
	if opts.MaxLocalQubits > 0 {
		for nodeBits(p) < n && n-nodeBits(p) > opts.MaxLocalQubits {
			p *= 2
		}
	}
	c, err := cluster.New(n, p)
	if err != nil {
		return nil, err
	}
	if opts.Workers > 0 {
		c.SetNodeParallelism(opts.Workers)
	}
	return &Distributed{c: c, opts: opts}, nil
}

// nodeBits returns log2(p) for a power-of-two p.
func nodeBits(p int) uint {
	b := uint(0)
	for 1<<b < p {
		b++
	}
	return b
}

// Cluster exposes the underlying emulated machine (placement, stats,
// emulation shortcuts, cluster-wide measurement).
func (d *Distributed) Cluster() *cluster.Cluster { return d.c }

// State gathers the distributed register into a single state vector —
// meant for verification at small sizes, not the hot path.
func (d *Distributed) State() *statevec.State { return d.c.Gather() }

// Name implements Backend.
func (d *Distributed) Name() string { return "distributed" }

// ApplyGate executes one gate immediately (per-gate routing, no
// batching). Prefer Run for whole circuits.
func (d *Distributed) ApplyGate(g gates.Gate) { d.c.ApplyGate(g) }

// Run executes the circuit through the scheduled engine: fusion at the
// configured width (clamped to the shard capacity), then batched
// placement remaps. FuseWidth < 2 degenerates to width-1 planning, which
// still merges same-target runs and batches remote-qubit gates.
//
// With Options.Emulate set, the circuit is first analysed by
// internal/recognize and recognised subroutines run through the
// distributed emulation substrates (cluster.ApplyOp): full-register QFT
// regions as the four-step distributed FFT, arithmetic as one cluster-wide
// permutation, diagonal runs shard-locally. Ops without a distributed
// lowering — and all the gates between regions — stay on the scheduled
// gate path.
func (d *Distributed) Run(c *circuit.Circuit) {
	width := d.opts.FuseWidth
	if d.opts.Emulate != EmulateOff {
		n, L, P := d.c.NumQubits(), d.c.L, d.c.P
		plan := recognize.Analyze(c, recognize.DefaultOptions(d.opts.Emulate))
		// Same cost model as the unified backend compiler: tiny diagonal
		// runs the fused kernels execute in one sweep stay gate-level.
		plan = plan.Filter(
			recognize.KeepAboveDiagCutoff(recognize.DefaultDiagCutoffGates,
				uint(cluster.ClampFuseWidth(width, L))),
			"cost model: below the dispatch cutoff, the fused kernel runs it in one sweep")
		plan = plan.Filter(func(op *recognize.Op) bool {
			_, ok := cluster.Lowerable(op, n, L, P)
			return ok
		}, "no distributed lowering; gate-level")
		for _, seg := range plan.Segments {
			if seg.Op != nil {
				if _, err := d.c.ApplyOp(seg.Op); err != nil {
					panic(fmt.Sprintf("sim: distributed emulation failed: %v", err))
				}
				continue
			}
			sub := &circuit.Circuit{NumQubits: c.NumQubits, Gates: c.Gates[seg.Lo:seg.Hi]}
			if err := d.c.RunScheduled(sub, width); err != nil {
				panic(fmt.Sprintf("sim: distributed run failed: %v", err))
			}
		}
		return
	}
	if err := d.c.RunScheduled(c, width); err != nil {
		panic(fmt.Sprintf("sim: distributed run failed: %v", err))
	}
}

// RunPlan executes a prebuilt fusion schedule on the cluster, like
// Simulator.RunPlan amortising the planning cost across repeated runs.
func (d *Distributed) RunPlan(p *fuse.Plan) error { return d.c.RunPlan(p) }
