package sim_test

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/rng"
	"repro/internal/sim"
)

// randomCircuit draws a circuit mixing dense rotations, Hadamards,
// diagonal gates, CNOTs, controlled rotations and Toffolis — the circuit
// family of the distributed-agreement property tests, deliberately heavy
// on controlled and multi-controlled gates.
func randomCircuit(n uint, count int, seed uint64) *circuit.Circuit {
	src := rng.New(seed)
	c := circuit.New(n)
	distinct := func(q uint) uint {
		o := uint(src.Intn(int(n)))
		for o == q {
			o = uint(src.Intn(int(n)))
		}
		return o
	}
	for i := 0; i < count; i++ {
		q := uint(src.Intn(int(n)))
		switch src.Intn(8) {
		case 0:
			c.Append(gates.H(q))
		case 1:
			c.Append(gates.Rx(q, src.Float64()*3))
		case 2:
			c.Append(gates.Ry(q, src.Float64()*3))
		case 3:
			c.Append(gates.Rz(q, src.Float64()*3))
		case 4:
			c.Append(gates.T(q))
		case 5:
			c.Append(gates.CNOT(distinct(q), q))
		case 6:
			c.Append(gates.CR(distinct(q), q, src.Float64()*2))
		default:
			a := distinct(q)
			b := distinct(q)
			if a != b {
				c.Append(gates.Toffoli(a, b, q))
			} else {
				c.Append(gates.X(q))
			}
		}
	}
	return c
}

// TestDistributedMatchesSingleNode is the acceptance property: over P in
// {2, 4, 8} simulated nodes, random circuits (controlled gates included)
// run through the communication-avoiding engine — with and without fused
// blocks — must match the single-node statevec simulation to 1e-10.
func TestDistributedMatchesSingleNode(t *testing.T) {
	const n = uint(9)
	for _, p := range []int{2, 4, 8} {
		for _, width := range []int{0, 3, 4} {
			for seed := uint64(1); seed <= 3; seed++ {
				circ := randomCircuit(n, 250, seed*31+uint64(p))
				opts := sim.Options{Specialize: true, Fuse: true, FuseWidth: width, Nodes: p}
				d, err := sim.NewDistributed(n, opts)
				if err != nil {
					t.Fatal(err)
				}
				d.Run(circ)

				ref := sim.NewWithOptions(n, sim.Options{Specialize: true, Fuse: true, FuseWidth: width})
				ref.Run(circ)

				if d := d.State().MaxDiff(ref.State()); d > 1e-10 {
					t.Errorf("p=%d width=%d seed=%d: distributed differs from single-node by %g",
						p, width, seed, d)
				}
			}
		}
	}
}

// TestDistributedMeasurementMatchesSingleNode drives measurement through
// the cluster: probabilities, measured bits (same RNG stream) and the
// collapsed post-measurement states must agree with the single-node path.
func TestDistributedMeasurementMatchesSingleNode(t *testing.T) {
	const n = uint(9)
	for _, p := range []int{2, 4, 8} {
		circ := randomCircuit(n, 200, 5+uint64(p))
		d, err := sim.NewDistributed(n, sim.Options{Nodes: p, FuseWidth: 3})
		if err != nil {
			t.Fatal(err)
		}
		d.Run(circ)
		ref := sim.NewWithOptions(n, sim.WideFusionOptions(3))
		ref.Run(circ)

		cl := d.Cluster()
		for q := uint(0); q < n; q++ {
			got, want := cl.Probability(q), ref.State().Probability(q)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("p=%d: P(q%d=1) = %g distributed, %g single-node", p, q, got, want)
			}
		}

		// Measure qubits across the local/node-selecting boundary with
		// identical RNG streams; outcomes and collapsed states must track.
		srcD, srcR := rng.New(99), rng.New(99)
		for _, q := range []uint{0, n - 1, 3, n - 2} {
			gotBit := cl.Measure(q, srcD)
			wantBit := ref.State().Measure(q, srcR)
			if gotBit != wantBit {
				t.Fatalf("p=%d: measuring q%d gave %d distributed, %d single-node", p, q, gotBit, wantBit)
			}
		}
		if diff := cl.Gather().MaxDiff(ref.State()); diff > 1e-10 {
			t.Errorf("p=%d: post-measurement states differ by %g", p, diff)
		}
		if nrm := cl.Norm(); math.Abs(nrm-1) > 1e-10 {
			t.Errorf("p=%d: post-measurement norm %g", p, nrm)
		}
	}
}

// TestDistributedSamplingMatchesSingleNode: with identical RNG streams the
// distributed sampler must reproduce the single-node SampleMany draws
// outcome for outcome (same CDF walk, shard-partitioned).
func TestDistributedSamplingMatchesSingleNode(t *testing.T) {
	const n = uint(9)
	for _, p := range []int{2, 4, 8} {
		circ := randomCircuit(n, 180, 17+uint64(p))
		d, err := sim.NewDistributed(n, sim.Options{Nodes: p})
		if err != nil {
			t.Fatal(err)
		}
		d.Run(circ)
		ref := sim.NewWithOptions(n, sim.DefaultOptions())
		ref.Run(circ)

		got := d.Cluster().SampleMany(300, rng.New(7))
		want := ref.State().SampleMany(300, rng.New(7))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: sample %d is |%d> distributed, |%d> single-node", p, i, got[i], want[i])
			}
		}

		if g, w := d.Cluster().Sample(rng.New(41)), ref.State().Sample(rng.New(41)); g != w {
			t.Errorf("p=%d: single draw |%d> distributed, |%d> single-node", p, g, w)
		}
	}
}

// TestDistributedExpectationMatchesSingleNode checks the cluster-wide
// diagonal-observable reduction against the single-node pass.
func TestDistributedExpectationMatchesSingleNode(t *testing.T) {
	const n = uint(8)
	obs := func(i uint64) float64 { return float64(i%17) - 8 }
	for _, p := range []int{2, 8} {
		circ := randomCircuit(n, 150, 23+uint64(p))
		d, err := sim.NewDistributed(n, sim.Options{Nodes: p, FuseWidth: 2})
		if err != nil {
			t.Fatal(err)
		}
		d.Run(circ)
		ref := sim.NewWithOptions(n, sim.WideFusionOptions(2))
		ref.Run(circ)

		got := d.Cluster().ExpectationDiagonal(obs)
		want := ref.State().ExpectationDiagonal(obs)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("p=%d: <obs> = %g distributed, %g single-node", p, got, want)
		}
	}
}

// TestDistributedValidationContract: the distributed backend must enforce
// the statevec kernel validation contract with identical messages, for
// offenders that would land on shard-local and node-selecting positions
// alike, before touching any amplitude.
func TestDistributedValidationContract(t *testing.T) {
	mustPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic, want %q", name, want)
				return
			}
			if msg, ok := r.(string); !ok || msg != want {
				t.Errorf("%s: panicked with %v, want %q", name, r, want)
			}
		}()
		fn()
	}
	d, err := sim.NewDistributed(8, sim.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := d.State()
	mustPanic("target out of range", "statevec: target qubit out of range",
		func() { d.ApplyGate(gates.H(8)) })
	mustPanic("remote control out of range", "statevec: control qubit out of range",
		func() { d.ApplyGate(gates.X(0).WithControls(9)) })
	mustPanic("control equals remote target", "statevec: control equals target",
		func() { d.ApplyGate(gates.X(7).WithControls(7)) })
	mustPanic("diagonal gate out of range", "statevec: target qubit out of range",
		func() { d.ApplyGate(gates.Rz(11, 0.5)) })
	if diff := d.State().MaxDiff(before); diff != 0 {
		t.Errorf("rejected gates mutated the state by %g", diff)
	}
}

// TestMaxLocalQubitsSizesNodeCount: the MaxLocalQubits option must raise
// the node count until shards fit.
func TestMaxLocalQubitsSizesNodeCount(t *testing.T) {
	d, err := sim.NewDistributed(10, sim.Options{Nodes: 2, MaxLocalQubits: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cluster().P != 8 || d.Cluster().L != 7 {
		t.Fatalf("got P=%d L=%d, want P=8 L=7", d.Cluster().P, d.Cluster().L)
	}
	if _, err := sim.NewDistributed(10, sim.Options{Nodes: 3}); err == nil {
		t.Error("non-power-of-two node count accepted")
	}
}
