// Package sim provides the gate-level simulator back-ends benchmarked in
// the paper's Section 4.5:
//
//   - Simulator: the paper's own simulator. It exploits the structure of
//     gate matrices (specialised diagonal / anti-diagonal / Hadamard
//     kernels that never multiply by ones and zeros) and optionally fuses
//     adjacent single-qubit gates on the same target.
//   - Generic: the qHiPSTER-class baseline. Structure-blind: every gate
//     runs the dense 2x2 kernel.
//   - SparseMatrix: the LIQUi|>-class baseline. Each gate is expanded into
//     an explicit sparse 2^n x 2^n matrix (CSR) and applied by a generic
//     sparse matrix-vector product — the "series of sparse matrix vector
//     multiplications" of the paper's Section 1.
//
// All three produce identical states; only the cost differs, which is the
// point of Figures 4-6.
package sim

import (
	"repro/internal/circuit"
	"repro/internal/fuse"
	"repro/internal/gates"
	"repro/internal/linalg"
	"repro/internal/recognize"
	"repro/internal/statevec"
)

// EmulateMode selects the emulation-dispatch behaviour of the paper's
// Section 3: Off runs everything gate-level, Annotated lowers explicitly
// annotated circuit regions to classical shortcuts (FFT, basis-state
// permutations, diagonal multiplies), Auto additionally pattern-matches
// unannotated QFT ladders, revlib arithmetic shapes, phase flips and
// diagonal runs. See internal/recognize for the recognition rules and
// fallback guarantees.
type EmulateMode = recognize.Mode

const (
	// EmulateOff disables emulation dispatch (the default).
	EmulateOff = recognize.Off
	// EmulateAnnotated trusts circuit.Region annotations only.
	EmulateAnnotated = recognize.Annotated
	// EmulateAuto also pattern-matches unannotated gate runs.
	EmulateAuto = recognize.Auto
)

// Backend executes circuits against a state vector.
type Backend interface {
	// State returns the backing state vector.
	State() *statevec.State
	// ApplyGate executes one gate.
	ApplyGate(g gates.Gate)
	// Run executes a whole circuit.
	Run(c *circuit.Circuit)
	// Name identifies the back-end in benchmark output.
	Name() string
}

// Options control the optimisations of the paper's simulator, so each can
// be ablated independently.
type Options struct {
	// Specialize selects structure-aware kernels (diagonal, X, Hadamard).
	// Off means every gate runs the dense 2x2 kernel.
	Specialize bool
	// Fuse merges runs of single-qubit gates acting on the same target
	// qubit into one matrix before touching the state.
	Fuse bool
	// FuseWidth >= 2 enables multi-qubit block fusion: the commutation-aware
	// scheduler of internal/fuse groups consecutive gates whose combined
	// support fits in FuseWidth qubits into one dense 2^FuseWidth block,
	// applied in a single sweep by statevec.ApplyMatrixN. 0 or 1 keeps the
	// classic same-target fusion controlled by Fuse. Values above
	// fuse.MaxWidth are clamped.
	FuseWidth int
	// Workers caps the shared-memory parallelism of the state-vector
	// kernels: 1 forces the single-threaded variants (useful for
	// deterministic baselines and serial-per-node setups), 0 uses the
	// GOMAXPROCS default. See statevec.State.SetParallelism. On the
	// distributed backend it caps each node's shard parallelism.
	Workers int
	// Nodes > 1 shards the register across this many emulated cluster
	// nodes (power of two) running the communication-avoiding scheduler
	// of internal/cluster. It is read by NewDistributed only; the
	// single-address-space constructors reject it rather than silently
	// running single-node.
	Nodes int
	// MaxLocalQubits, when non-zero, caps the per-node shard size of the
	// distributed backend: the node count is raised (beyond Nodes if
	// needed) until each node holds at most 2^MaxLocalQubits amplitudes —
	// the way a real deployment sizes P from per-node memory. Like
	// Nodes, it is only meaningful to NewDistributed.
	MaxLocalQubits uint
	// Emulate enables emulation dispatch: Run analyses each circuit with
	// internal/recognize and executes recognised subroutines (QFT regions,
	// reversible arithmetic, phase oracles) as classical shortcuts,
	// handing everything else to the configured gate-level path. The
	// distributed backend honours it too: recognised ops lower through the
	// cluster substrates (four-step FFT, cluster-wide permutations,
	// shard-local diagonals), with ops that have no distributed lowering
	// falling back to the scheduled gate path.
	Emulate EmulateMode
}

// DefaultOptions enables every optimisation at the paper's setting:
// specialised kernels plus same-target single-qubit fusion. Multi-qubit
// block fusion (FuseWidth) stays opt-in because its payoff depends on the
// circuit shape; see WideFusionOptions.
func DefaultOptions() Options { return Options{Specialize: true, Fuse: true} }

// WideFusionOptions enables multi-qubit block fusion at the given width on
// top of the default optimisations.
func WideFusionOptions(width int) Options {
	return Options{Specialize: true, Fuse: true, FuseWidth: width}
}

// Simulator is the paper's optimised gate-level simulator.
type Simulator struct {
	state *statevec.State
	opts  Options
}

// New returns an optimised simulator over a fresh |0...0> register.
func New(n uint) *Simulator { return NewWithOptions(n, DefaultOptions()) }

// NewWithOptions returns a simulator with explicit optimisation settings.
func NewWithOptions(n uint, opts Options) *Simulator {
	return Wrap(statevec.New(n), opts)
}

// Wrap returns a simulator operating on an existing state. A non-zero
// Workers option is applied to the state's kernel parallelism. Options
// asking for the distributed backend (Nodes > 1) are a programming error
// here — a single state vector cannot be sharded — and panic instead of
// silently running single-node.
func Wrap(s *statevec.State, opts Options) *Simulator {
	if opts.Nodes > 1 {
		panic("sim: Options.Nodes > 1 requires NewDistributed, not the single-node simulator")
	}
	if opts.Workers > 0 {
		s.SetParallelism(opts.Workers)
	}
	return &Simulator{state: s, opts: opts}
}

// State returns the backing state vector.
func (s *Simulator) State() *statevec.State { return s.state }

// Name implements Backend.
func (s *Simulator) Name() string { return "our-simulator" }

// ApplyGate executes one gate with the most specialised kernel enabled.
func (s *Simulator) ApplyGate(g gates.Gate) {
	if s.opts.Specialize {
		s.state.ApplyGate(g)
	} else {
		s.state.ApplyGateGeneric(g)
	}
}

// Run executes the circuit. With Options.Emulate set, the circuit is
// first analysed by internal/recognize and recognised subroutines run as
// classical shortcuts (Section 3 of the paper); the remaining gate ranges
// — and the whole circuit when emulation is off — execute with the
// configured fusion strategy: multi-qubit block fusion when FuseWidth >=
// 2, same-target single-qubit fusion when Fuse is set, gate-by-gate
// otherwise.
func (s *Simulator) Run(c *circuit.Circuit) {
	if s.opts.Emulate != EmulateOff {
		s.RunEmulationPlan(c, recognize.Analyze(c, recognize.DefaultOptions(s.opts.Emulate)))
		return
	}
	s.runGates(c)
}

// RunEmulationPlan executes a circuit through a prebuilt emulation-
// dispatch plan (see PlanEmulation / recognize.Analyze): recognised ops
// apply their shortcut directly to the state, gate segments run through
// the configured gate-level path. Callers repeating one circuit amortise
// the recognition cost exactly as RunPlan amortises fusion planning.
func (s *Simulator) RunEmulationPlan(c *circuit.Circuit, p *recognize.Plan) {
	if p.NumGates != c.Len() || p.NumQubits != c.NumQubits {
		panic("sim: emulation plan does not match circuit")
	}
	for _, seg := range p.Segments {
		if seg.Op != nil {
			seg.Op.Apply(s.state)
			continue
		}
		s.runGates(&circuit.Circuit{NumQubits: c.NumQubits, Gates: c.Gates[seg.Lo:seg.Hi]})
	}
}

// PlanEmulation analyses c for emulatable subroutines at the given mode.
func PlanEmulation(c *circuit.Circuit, mode EmulateMode) *recognize.Plan {
	return recognize.Analyze(c, recognize.DefaultOptions(mode))
}

// runGates is the gate-level execution path shared by Run and the
// unrecognised segments of an emulation plan.
func (s *Simulator) runGates(c *circuit.Circuit) {
	if s.opts.FuseWidth >= 2 {
		s.RunPlan(fuse.New(c, s.opts.FuseWidth))
		return
	}
	if !s.opts.Fuse {
		for _, g := range c.Gates {
			s.ApplyGate(g)
		}
		return
	}
	gs := c.Gates
	for i := 0; i < len(gs); {
		g := gs[i]
		if len(g.Controls) != 0 {
			s.ApplyGate(g)
			i++
			continue
		}
		// Fuse the maximal run of uncontrolled gates on the same target.
		m := g.Matrix
		j := i + 1
		for j < len(gs) && len(gs[j].Controls) == 0 && gs[j].Target == g.Target {
			m = gs[j].Matrix.Mul(m)
			j++
		}
		if j == i+1 {
			s.ApplyGate(g)
		} else {
			s.ApplyGate(gates.Gate{Name: "fused", Matrix: m, Target: g.Target})
		}
		i = j
	}
}

// RunPlan executes a prebuilt fusion schedule. Callers running the same
// circuit many times (benchmark sweeps, repeated Grover/Trotter iterations)
// can plan once with fuse.New and amortise the scheduling cost; Run with
// Options.FuseWidth plans on every call.
func (s *Simulator) RunPlan(p *fuse.Plan) {
	p.Apply(s.state, s.ApplyGate)
}

// Generic is the qHiPSTER-class structure-blind baseline.
type Generic struct {
	state *statevec.State
}

// NewGeneric returns a Generic back-end over a fresh register.
func NewGeneric(n uint) *Generic { return &Generic{state: statevec.New(n)} }

// WrapGeneric returns a Generic back-end over an existing state.
func WrapGeneric(s *statevec.State) *Generic { return &Generic{state: s} }

// State returns the backing state vector.
func (g *Generic) State() *statevec.State { return g.state }

// Name implements Backend.
func (g *Generic) Name() string { return "qhipster-class" }

// ApplyGate executes one gate through the dense 2x2 kernel.
func (g *Generic) ApplyGate(gt gates.Gate) { g.state.ApplyGateGeneric(gt) }

// Run executes the circuit gate by gate, no fusion.
func (g *Generic) Run(c *circuit.Circuit) {
	for _, gt := range c.Gates {
		g.ApplyGate(gt)
	}
}

// DenseUnitary builds the full 2^n x 2^n matrix of a circuit by running it
// on every computational basis state: column i is C|i>. Cost O(G * 2^(2n)),
// exactly the "T_construction of dense U" step of Table 2.
func DenseUnitary(c *circuit.Circuit) *linalg.Matrix {
	n := c.NumQubits
	dim := 1 << n
	u := linalg.NewMatrix(dim, dim)
	for col := 0; col < dim; col++ {
		st := statevec.NewBasis(n, uint64(col))
		s := Wrap(st, DefaultOptions())
		s.Run(c)
		for row, a := range st.Amplitudes() {
			u.Set(row, col, a)
		}
	}
	return u
}
