package sim

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/fuse"
	"repro/internal/gates"
	"repro/internal/rng"
	"repro/internal/statevec"
)

func randomCircuit(src *rng.Source, n uint, count int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < count; i++ {
		q := uint(src.Intn(int(n)))
		switch src.Intn(6) {
		case 0:
			c.Append(gates.H(q))
		case 1:
			c.Append(gates.T(q))
		case 2:
			c.Append(gates.Rz(q, src.Float64()*3))
		case 3:
			c.Append(gates.X(q))
		case 4:
			o := uint(src.Intn(int(n)))
			if o != q {
				c.Append(gates.CNOT(o, q))
			} else {
				c.Append(gates.Y(q))
			}
		default:
			o := uint(src.Intn(int(n)))
			if o != q {
				c.Append(gates.CR(o, q, src.Float64()*2))
			} else {
				c.Append(gates.S(q))
			}
		}
	}
	return c
}

// TestBackendsAgree is the Section 4.5 consistency check: all three
// back-ends must produce identical states on identical circuits.
func TestBackendsAgree(t *testing.T) {
	src := rng.New(404)
	for trial := 0; trial < 8; trial++ {
		n := uint(3 + src.Intn(4))
		c := randomCircuit(src, n, 60)

		ours := New(n)
		generic := NewGeneric(n)
		sparse := NewSparseMatrix(n)
		ours.Run(c)
		generic.Run(c)
		sparse.Run(c)

		if d := ours.State().MaxDiff(generic.State()); d > 1e-10 {
			t.Fatalf("trial %d: ours vs generic differ by %g", trial, d)
		}
		if d := ours.State().MaxDiff(sparse.State()); d > 1e-10 {
			t.Fatalf("trial %d: ours vs sparse differ by %g", trial, d)
		}
	}
}

func TestFusionPreservesSemantics(t *testing.T) {
	src := rng.New(505)
	n := uint(5)
	// Circuit with long same-target runs to exercise fusion.
	c := circuit.New(n)
	for i := 0; i < 30; i++ {
		q := uint(src.Intn(int(n)))
		c.Append(gates.H(q), gates.T(q), gates.S(q))
		if i%4 == 0 {
			c.Append(gates.CNOT(q, (q+1)%n))
		}
	}
	fused := NewWithOptions(n, Options{Specialize: true, Fuse: true})
	plain := NewWithOptions(n, Options{Specialize: true, Fuse: false})
	fused.Run(c)
	plain.Run(c)
	if d := fused.State().MaxDiff(plain.State()); d > 1e-10 {
		t.Fatalf("fusion changed semantics by %g", d)
	}
}

// TestWideFusionPreservesSemantics is the simulator-level fusion property
// test: for random circuits (controlled gates included) every FuseWidth in
// 2..5 must agree with the unfused run amplitude by amplitude.
func TestWideFusionPreservesSemantics(t *testing.T) {
	src := rng.New(1604)
	for trial := 0; trial < 6; trial++ {
		n := uint(4 + src.Intn(4))
		c := randomCircuit(src, n, 100)
		plain := NewWithOptions(n, Options{Specialize: true})
		plain.Run(c)
		for width := 2; width <= 5; width++ {
			fused := NewWithOptions(n, WideFusionOptions(width))
			fused.Run(c)
			if d := fused.State().MaxDiff(plain.State()); d > 1e-10 {
				t.Fatalf("trial %d width %d: wide fusion diverges by %g", trial, width, d)
			}
		}
	}
}

// TestRunPlanMatchesRun: a prebuilt plan must execute identically to Run
// with the same width.
func TestRunPlanMatchesRun(t *testing.T) {
	src := rng.New(1605)
	n := uint(6)
	c := randomCircuit(src, n, 80)
	viaRun := NewWithOptions(n, WideFusionOptions(4))
	viaRun.Run(c)
	viaPlan := NewWithOptions(n, WideFusionOptions(4))
	viaPlan.RunPlan(fuse.New(c, 4))
	if d := viaRun.State().MaxDiff(viaPlan.State()); d > 1e-12 {
		t.Fatalf("RunPlan differs from Run by %g", d)
	}
}

func TestSpecializeOffStillCorrect(t *testing.T) {
	src := rng.New(606)
	n := uint(4)
	c := randomCircuit(src, n, 40)
	spec := NewWithOptions(n, Options{Specialize: true})
	unspec := NewWithOptions(n, Options{Specialize: false})
	spec.Run(c)
	unspec.Run(c)
	if d := spec.State().MaxDiff(unspec.State()); d > 1e-10 {
		t.Fatalf("specialisation ablation diverges: %g", d)
	}
}

func TestGateToCSRStructure(t *testing.T) {
	// CSR of a CNOT: permutation matrix with one 1 per row.
	m := GateToCSR(gates.CNOT(0, 1), 2)
	if m.N != 4 {
		t.Fatalf("dim %d", m.N)
	}
	for row := uint64(0); row < 4; row++ {
		nnz := m.RowPtr[row+1] - m.RowPtr[row]
		if nnz != 1 && nnz != 2 {
			t.Fatalf("row %d has %d nnz", row, nnz)
		}
	}
	// Column sums of |entries|^2 must be 1 (unitary with unit columns).
	colSum := make([]float64, 4)
	for p := range m.Values {
		v := m.Values[p]
		colSum[m.ColIdx[p]] += real(v)*real(v) + imag(v)*imag(v)
	}
	for c, s := range colSum {
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("column %d norm %v", c, s)
		}
	}
}

func TestDenseUnitaryOfCNOT(t *testing.T) {
	c := circuit.New(2)
	c.Append(gates.CNOT(0, 1))
	u := DenseUnitary(c)
	// CNOT with control q0, target q1: |01> <-> |11>, i.e. columns 1 and 3
	// swapped relative to identity.
	want := [][]complex128{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if u.At(i, j) != want[i][j] {
				t.Fatalf("U[%d][%d] = %v, want %v", i, j, u.At(i, j), want[i][j])
			}
		}
	}
}

func TestDenseUnitaryIsUnitary(t *testing.T) {
	src := rng.New(707)
	c := randomCircuit(src, 4, 30)
	u := DenseUnitary(c)
	if !u.IsUnitary(1e-9) {
		t.Error("circuit unitary is not unitary")
	}
	// And it must act like the circuit on a random state.
	st := statevec.NewRandom(4, src)
	viaMatrix := u.MatVec(st.Amplitudes())
	viaSim := st.Clone()
	Wrap(viaSim, DefaultOptions()).Run(c)
	for i, v := range viaMatrix {
		d := v - viaSim.Amplitude(uint64(i))
		if math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("matrix path differs at %d", i)
		}
	}
}
