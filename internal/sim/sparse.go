package sim

import (
	"repro/internal/bitops"
	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/statevec"
)

// CSR is a compressed-sparse-row complex matrix, the representation the
// SparseMatrix baseline expands each gate into.
type CSR struct {
	N      uint64
	RowPtr []uint64
	ColIdx []uint64
	Values []complex128
}

// GateToCSR expands a (controlled) single-qubit gate into its full
// 2^n x 2^n sparse matrix. Every row holds one or two non-zeros.
func GateToCSR(g gates.Gate, n uint) *CSR {
	dim := uint64(1) << n
	cmask := bitops.ControlMask(g.Controls)
	tbit := uint64(1) << g.Target
	m := &CSR{
		N:      dim,
		RowPtr: make([]uint64, dim+1),
		ColIdx: make([]uint64, 0, 2*dim),
		Values: make([]complex128, 0, 2*dim),
	}
	for row := uint64(0); row < dim; row++ {
		if row&cmask != cmask {
			// Control fails: identity row.
			m.ColIdx = append(m.ColIdx, row)
			m.Values = append(m.Values, 1)
		} else if row&tbit == 0 {
			m.ColIdx = append(m.ColIdx, row, row|tbit)
			m.Values = append(m.Values, g.Matrix[0], g.Matrix[1])
		} else {
			m.ColIdx = append(m.ColIdx, row&^tbit, row)
			m.Values = append(m.Values, g.Matrix[2], g.Matrix[3])
		}
		m.RowPtr[row+1] = uint64(len(m.ColIdx))
	}
	return m
}

// MatVec computes y = M*x with the generic CSR kernel (no knowledge of the
// gate structure survives the expansion — that is the point).
func (m *CSR) MatVec(y, x []complex128) {
	for row := uint64(0); row < m.N; row++ {
		var acc complex128
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			acc += m.Values[p] * x[m.ColIdx[p]]
		}
		y[row] = acc
	}
}

// SparseMatrix is the LIQUi|>-class baseline: it simulates each gate as an
// explicit sparse matrix-vector multiplication, paying matrix construction,
// index-chasing loads and an out-of-place vector per gate.
type SparseMatrix struct {
	state   *statevec.State
	scratch []complex128
}

// NewSparseMatrix returns a SparseMatrix back-end over a fresh register.
func NewSparseMatrix(n uint) *SparseMatrix {
	return &SparseMatrix{
		state:   statevec.New(n),
		scratch: make([]complex128, uint64(1)<<n),
	}
}

// WrapSparseMatrix returns the baseline over an existing state.
func WrapSparseMatrix(s *statevec.State) *SparseMatrix {
	return &SparseMatrix{state: s, scratch: make([]complex128, s.Dim())}
}

// State returns the backing state vector.
func (b *SparseMatrix) State() *statevec.State { return b.state }

// Name implements Backend.
func (b *SparseMatrix) Name() string { return "liquid-class" }

// ApplyGate expands the gate to CSR and applies it by sparse mat-vec.
func (b *SparseMatrix) ApplyGate(g gates.Gate) {
	m := GateToCSR(g, b.state.NumQubits())
	amps := b.state.Amplitudes()
	m.MatVec(b.scratch, amps)
	copy(amps, b.scratch)
}

// Run executes the circuit gate by gate.
func (b *SparseMatrix) Run(c *circuit.Circuit) {
	for _, g := range c.Gates {
		b.ApplyGate(g)
	}
}
