package statevec

import (
	"math"
	"math/cmplx"
	"runtime"
	"sync"
	"testing"

	"repro/internal/rng"
)

// engineN is large enough (dim 2^13 > parallelThreshold) that kernels on a
// multi-worker State actually dispatch to the pool.
const engineN = 13

// TestPooledKernelsMatchSerial is the engine's core property test: every
// kernel and reduction must produce the same result (to 1e-12) through the
// worker pool as through the forced single-threaded path.
func TestPooledKernelsMatchSerial(t *testing.T) {
	src := rng.New(202)
	trials := 3
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		init := NewRandom(engineN, src)
		par := init.Clone()
		par.SetParallelism(4)
		ser := init.Clone()
		ser.SetParallelism(1)

		for _, g := range randomGates(src, engineN, 40) {
			par.ApplyGate(g)
			ser.ApplyGate(g)
		}
		// A generic 3-qubit block through the gather/scatter sweep.
		blk := randomUnitary3(src)
		qs := []uint{1, 5, 9}
		par.ApplyMatrixN(blk, qs)
		ser.ApplyMatrixN(blk, qs)
		// A permutation through the scratch-swap path.
		mask := par.Dim() - 1
		rot := func(i uint64) uint64 { return (i + 97) & mask }
		par.ApplyPermutation(rot)
		ser.ApplyPermutation(rot)

		if d := par.MaxDiff(ser); d > 1e-12 {
			t.Fatalf("pooled vs serial state diverged: %g", d)
		}
		ps, err := ParsePauliString("X1 Z4 Y7")
		if err != nil {
			t.Fatal(err)
		}
		obs := func(i uint64) float64 { return float64(i % 11) }
		checks := []struct {
			name string
			p, s float64
		}{
			{"Norm", par.Norm(), ser.Norm()},
			{"Probability", par.Probability(3), ser.Probability(3)},
			{"Fidelity", par.Fidelity(init), ser.Fidelity(init)},
			{"ExpectationDiagonal", par.ExpectationDiagonal(obs), ser.ExpectationDiagonal(obs)},
			{"ExpectationPauli", par.ExpectationPauli(ps), ser.ExpectationPauli(ps)},
		}
		for _, c := range checks {
			if math.Abs(c.p-c.s) > 1e-12 {
				t.Errorf("%s: pooled %v vs serial %v", c.name, c.p, c.s)
			}
		}
		if d := cmplx.Abs(par.Inner(init) - ser.Inner(init)); d > 1e-12 {
			t.Errorf("Inner: pooled vs serial differ by %g", d)
		}

		// Collapse through the fused sweep, both paths.
		b := uint64(0)
		if par.Probability(2) > 0.5 {
			b = 1
		}
		par.Collapse(2, b)
		ser.Collapse(2, b)
		if d := par.MaxDiff(ser); d > 1e-12 {
			t.Fatalf("pooled vs serial collapse diverged: %g", d)
		}
	}
}

// randomUnitary3 builds a Haar-ish random 8x8 unitary by orthonormalising
// random columns (Gram-Schmidt); exact unitarity is not required for the
// parity check, but keeps the state well-conditioned.
func randomUnitary3(src *rng.Source) []complex128 {
	const d = 8
	cols := make([][]complex128, d)
	for c := range cols {
		v := make([]complex128, d)
		for i := range v {
			v[i] = src.Complex()
		}
		for _, prev := range cols[:c] {
			var dot complex128
			for i := range v {
				dot += cmplx.Conj(prev[i]) * v[i]
			}
			for i := range v {
				v[i] -= dot * prev[i]
			}
		}
		var nrm float64
		for _, x := range v {
			nrm += real(x)*real(x) + imag(x)*imag(x)
		}
		inv := complex(1/math.Sqrt(nrm), 0)
		for i := range v {
			v[i] *= inv
		}
		cols[c] = v
	}
	m := make([]complex128, d*d)
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			m[r*d+c] = cols[c][r]
		}
	}
	return m
}

// TestCollapseFusedMatchesThreePass checks the fused single-sweep Collapse
// against the textbook three-pass reference (zero, re-norm, rescale).
func TestCollapseFusedMatchesThreePass(t *testing.T) {
	src := rng.New(303)
	for trial := 0; trial < 5; trial++ {
		s := NewRandom(engineN, src)
		q := uint(src.Intn(engineN))
		b := uint64(src.Intn(2))
		if s.Probability(q) == 0 && b == 1 {
			b = 0
		}
		ref := s.Clone()
		s.Collapse(q, b)

		// Reference: three explicit passes.
		stride := uint64(1) << q
		amps := ref.Amplitudes()
		for i := range amps {
			if (uint64(i)&stride != 0) != (b == 1) {
				amps[i] = 0
			}
		}
		var norm float64
		for _, a := range amps {
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for i := range amps {
			amps[i] *= inv
		}

		if d := s.MaxDiff(ref); d > 1e-12 {
			t.Fatalf("fused collapse differs from three-pass reference: %g", d)
		}
		if d := math.Abs(s.Norm() - 1); d > 1e-12 {
			t.Fatalf("fused collapse broke normalisation: %g", d)
		}
	}
}

// TestConcurrentIndependentStates drives several States from separate
// goroutines at once — each with its own worker pool — and verifies every
// one against a serial twin. Run under -race this is the pool's data-race
// coverage.
func TestConcurrentIndependentStates(t *testing.T) {
	goroutines := 4
	if testing.Short() {
		goroutines = 2
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			src := rng.New(seed)
			par := NewRandom(engineN, src)
			par.SetParallelism(3)
			ser := par.Clone()
			ser.SetParallelism(1)
			for _, g := range randomGates(src, engineN, 25) {
				par.ApplyGate(g)
				ser.ApplyGate(g)
			}
			mask := par.Dim() - 1
			par.ApplyPermutation(func(i uint64) uint64 { return (i + 31) & mask })
			ser.ApplyPermutation(func(i uint64) uint64 { return (i + 31) & mask })
			b := uint64(0)
			if par.Probability(1) > 0.5 {
				b = 1
			}
			par.Collapse(1, b)
			ser.Collapse(1, b)
			if d := par.MaxDiff(ser); d > 1e-12 {
				t.Errorf("goroutine seed %d: diverged by %g", seed, d)
			}
		}(uint64(400 + g))
	}
	wg.Wait()
}

// TestWorkerPoolIsPersistent verifies the tentpole's point: repeated
// kernels reuse one pool instead of spawning goroutines per call.
func TestWorkerPoolIsPersistent(t *testing.T) {
	s := NewRandom(engineN, rng.New(505))
	s.SetParallelism(4)
	s.ApplyHadamard(0) // force pool creation
	if s.pool == nil {
		t.Fatal("no pool created for a parallel-sized state")
	}
	p := s.pool
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		s.ApplyHadamard(uint(i % engineN))
		_ = s.Norm()
	}
	if s.pool != p {
		t.Error("pool was recreated between kernels")
	}
	after := runtime.NumGoroutine()
	if after > before+8 {
		t.Errorf("goroutine count grew from %d to %d across 400 kernels", before, after)
	}
}

// TestSmallStateStaysSerial verifies the engine never spawns a pool below
// the parallel threshold (DenseUnitary creates thousands of tiny states;
// they must stay pool-free).
func TestSmallStateStaysSerial(t *testing.T) {
	s := NewRandom(8, rng.New(606))
	for _, g := range randomGates(rng.New(607), 8, 20) {
		s.ApplyGate(g)
	}
	_ = s.Norm()
	_ = s.Probability(0)
	if s.pool != nil {
		t.Error("a 256-amplitude state spawned a worker pool")
	}
}

// TestApplyPermutationScratchReuse verifies the swap semantics: repeated
// permutations stay correct while reusing the same two buffers.
func TestApplyPermutationScratchReuse(t *testing.T) {
	src := rng.New(707)
	s := NewRandom(engineN, src)
	s.SetParallelism(4)
	orig := s.Clone()
	mask := s.Dim() - 1
	fwd := func(i uint64) uint64 { return (i + 1234) & mask }
	inv := func(i uint64) uint64 { return (i - 1234) & mask }
	for round := 0; round < 4; round++ {
		s.ApplyPermutation(fwd)
		s.ApplyPermutation(inv)
	}
	if d := s.MaxDiff(orig); d > eps {
		t.Fatalf("permutation round-trips drifted by %g", d)
	}
	if s.scratch == nil {
		t.Error("no scratch buffer retained after permutations")
	}
}

// TestSampleSerialAndChunkedAgree runs both CDF-walk implementations on
// the same draws and checks they agree on a normalised state.
func TestSampleSerialAndChunkedAgree(t *testing.T) {
	src := rng.New(808)
	s := NewRandom(engineN, src)
	par := s.Clone()
	par.SetParallelism(4)
	ser := s.Clone()
	ser.SetParallelism(1)
	srcA, srcB := rng.New(42), rng.New(42)
	for i := 0; i < 50; i++ {
		a, b := par.Sample(srcA), ser.Sample(srcB)
		if a != b {
			t.Fatalf("draw %d: chunked %d vs serial %d", i, a, b)
		}
	}
	ma := par.SampleMany(200, srcA)
	mb := ser.SampleMany(200, srcB)
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("SampleMany draw %d: chunked %d vs serial %d", i, ma[i], mb[i])
		}
	}
}
