package statevec

import (
	"testing"

	"repro/internal/gates"
)

// TestHotpathKernelsDoNotAllocate pins the zero-steady-state-allocation
// contract the //qemu:hotpath annotations document and the hotpathalloc
// analyzer enforces syntactically: once a State exists, the annotated
// kernels run without touching the heap. The state is kept below
// parallelThreshold so the serial path is measured (the parallel path
// amortises its worker pool separately).
func TestHotpathKernelsDoNotAllocate(t *testing.T) {
	s := NewZero(8)
	s.SetParallelism(1)
	s.ApplyHadamard(0) // spread some mass so collapse paths stay legal
	controls := []uint{3, 4}
	m4 := &[16]complex128{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1}
	cases := []struct {
		name string
		run  func()
	}{
		{"ApplyMatrix2", func() { s.ApplyMatrix2(gates.MatH, 1) }},
		{"ApplyControlledMatrix2", func() { s.ApplyControlledMatrix2(gates.MatH, 1, controls) }},
		{"ApplyX", func() { s.ApplyX(1) }},
		{"ApplyControlledX", func() { s.ApplyControlledX(1, controls) }},
		{"ApplyDiag", func() { s.ApplyDiag(1, -1, 1) }},
		{"ApplyControlledDiag", func() { s.ApplyControlledDiag(1, -1, 1, controls) }},
		{"ApplyHadamard", func() { s.ApplyHadamard(1) }},
		{"ApplyMatrix4", func() { s.ApplyMatrix4(m4, 1, 2) }},
		{"ApplySwap", func() { s.ApplySwap(1, 2) }},
		{"collapseScaled", func() { s.collapseScaled(0, 0, 1) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(50, c.run); n != 0 {
			t.Errorf("%s: %v allocs per run, want 0", c.name, n)
		}
	}
}

// BenchmarkHotpathApplyX is the -benchmem witness for the same
// contract on a vector large enough to be bandwidth-bound.
func BenchmarkHotpathApplyX(b *testing.B) {
	s := NewZero(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyX(uint(i) % 16)
	}
}
