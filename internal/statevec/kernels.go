package statevec

import (
	"repro/internal/bitops"
	"repro/internal/gates"
)

// CheckTargetControls validates a (target, controls) pair against an
// n-qubit register exactly as the single-qubit kernels do: the target must
// be in range, every control must be in range and distinct from the
// target. It is exported so sharded owners of the state (internal/cluster)
// can enforce the identical contract — same panics, same messages — on
// qubits the per-shard kernels never see (node-selecting qubits).
func CheckTargetControls(n uint, k uint, controls []uint) {
	if k >= n {
		panic("statevec: target qubit out of range")
	}
	for _, c := range controls {
		if c == k {
			panic("statevec: control equals target")
		}
		if c >= n {
			panic("statevec: control qubit out of range")
		}
	}
}

// checkTargetControls validates a (target, controls) pair for the
// single-qubit kernels. Every controlled kernel applies the same contract,
// so an out-of-range control panics instead of silently producing a mask
// bit that can never match.
func (s *State) checkTargetControls(k uint, controls []uint) {
	CheckTargetControls(s.n, k, controls)
}

// checkTarget panics when the target qubit k is out of range. Every
// single-qubit kernel calls it (or a sibling check* helper) before its
// first amplitude access — the contract the kernelvalidate analyzer
// enforces — so all kernels fail identically, before any state is
// touched.
func (s *State) checkTarget(k uint) {
	if k >= s.n {
		panic("statevec: target qubit out of range")
	}
}

// ApplyMatrix2 applies the dense 2x2 unitary m to qubit k. This is the
// generic kernel a structure-blind simulator (the qHiPSTER-class baseline)
// uses for every gate: two reads, two writes and a full complex 2x2
// multiply per amplitude pair.
//
//qemu:hotpath
func (s *State) ApplyMatrix2(m gates.Matrix2, k uint) {
	s.checkTarget(k)
	half := s.Dim() >> 1
	stride := uint64(1) << k
	if s.parallelism(half) <= 1 {
		matrix2Chunk(s.amp, m, k, stride, 0, half)
		return
	}
	s.parallelRange(half, func(start, end uint64) {
		matrix2Chunk(s.amp, m, k, stride, start, end)
	})
}

// matrix2Chunk runs the dense 2x2 butterfly over flat indices
// [start, end). The kernels dispatch to chunk functions like this one
// instead of closing over their parameters so the serial path — and
// the per-chunk work on the parallel path — costs zero allocations: a
// closure handed to the worker pool escapes and would otherwise
// heap-allocate on every kernel call, serial or not.
func matrix2Chunk(amp []complex128, m gates.Matrix2, k uint, stride, start, end uint64) {
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		i1 := i0 | stride
		a0, a1 := amp[i0], amp[i1]
		amp[i0] = m[0]*a0 + m[1]*a1
		amp[i1] = m[2]*a0 + m[3]*a1
	}
}

// ApplyControlledMatrix2 applies m to qubit k on the subspace where every
// control qubit reads 1. Controls must not include k.
//
//qemu:hotpath
func (s *State) ApplyControlledMatrix2(m gates.Matrix2, k uint, controls []uint) {
	if len(controls) == 0 {
		s.ApplyMatrix2(m, k)
		return
	}
	s.checkTargetControls(k, controls)
	cmask := bitops.ControlMask(controls)
	half := s.Dim() >> 1
	stride := uint64(1) << k
	if s.parallelism(half) <= 1 {
		ctrlMatrix2Chunk(s.amp, m, k, stride, cmask, 0, half)
		return
	}
	s.parallelRange(half, func(start, end uint64) {
		ctrlMatrix2Chunk(s.amp, m, k, stride, cmask, start, end)
	})
}

// ctrlMatrix2Chunk is matrix2Chunk restricted to pairs whose control
// bits are all set.
func ctrlMatrix2Chunk(amp []complex128, m gates.Matrix2, k uint, stride, cmask, start, end uint64) {
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		if i0&cmask != cmask {
			continue
		}
		i1 := i0 | stride
		a0, a1 := amp[i0], amp[i1]
		amp[i0] = m[0]*a0 + m[1]*a1
		amp[i1] = m[2]*a0 + m[3]*a1
	}
}

// ApplyX applies a NOT to qubit k by swapping amplitude pairs — no complex
// arithmetic at all. One of the specialised kernels that distinguish the
// paper's simulator from the generic baseline.
//
//qemu:hotpath
func (s *State) ApplyX(k uint) {
	s.checkTarget(k)
	half := s.Dim() >> 1
	stride := uint64(1) << k
	if s.parallelism(half) <= 1 {
		xChunk(s.amp, k, stride, 0, half)
		return
	}
	s.parallelRange(half, func(start, end uint64) {
		xChunk(s.amp, k, stride, start, end)
	})
}

// xChunk swaps the amplitude pairs of a NOT over flat indices
// [start, end).
func xChunk(amp []complex128, k uint, stride, start, end uint64) {
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		i1 := i0 | stride
		amp[i0], amp[i1] = amp[i1], amp[i0]
	}
}

// ApplyDiag applies the diagonal gate diag(d0, d1) to qubit k: a single
// multiply per amplitude, no pairing, no swaps. Entries equal to exactly 1
// are skipped entirely, so a phase gate touches only half the vector — this
// is the "read and write only a quarter of the state" optimisation of
// Section 3.2 once a control is added.
//
//qemu:hotpath
func (s *State) ApplyDiag(d0, d1 complex128, k uint) {
	s.checkTarget(k)
	half := s.Dim() >> 1
	stride := uint64(1) << k
	scale0 := d0 != 1
	scale1 := d1 != 1
	if !scale0 && !scale1 {
		return
	}
	if s.parallelism(half) <= 1 {
		diagChunk(s.amp, d0, d1, k, stride, scale0, scale1, 0, half)
		return
	}
	s.parallelRange(half, func(start, end uint64) {
		diagChunk(s.amp, d0, d1, k, stride, scale0, scale1, start, end)
	})
}

// diagChunk scales the selected branches of diag(d0, d1) over flat
// indices [start, end).
func diagChunk(amp []complex128, d0, d1 complex128, k uint, stride uint64, scale0, scale1 bool, start, end uint64) {
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		if scale0 {
			amp[i0] *= d0
		}
		if scale1 {
			amp[i0|stride] *= d1
		}
	}
}

// ApplyControlledDiag applies diag(d0, d1) on qubit k conditioned on the
// controls. For the conditional phase shift (d0 == 1) only the amplitudes
// with target bit 1 AND all control bits 1 are touched: a quarter of the
// state for one control, an eighth for two, and so on.
//
//qemu:hotpath
func (s *State) ApplyControlledDiag(d0, d1 complex128, k uint, controls []uint) {
	if len(controls) == 0 {
		s.ApplyDiag(d0, d1, k)
		return
	}
	s.checkTargetControls(k, controls)
	cmask := bitops.ControlMask(controls)
	half := s.Dim() >> 1
	stride := uint64(1) << k
	scale0 := d0 != 1
	scale1 := d1 != 1
	if !scale0 && !scale1 {
		return
	}
	if s.parallelism(half) <= 1 {
		ctrlDiagChunk(s.amp, d0, d1, k, stride, cmask, scale0, scale1, 0, half)
		return
	}
	s.parallelRange(half, func(start, end uint64) {
		ctrlDiagChunk(s.amp, d0, d1, k, stride, cmask, scale0, scale1, start, end)
	})
}

// ctrlDiagChunk is diagChunk restricted to indices whose control bits
// are all set.
func ctrlDiagChunk(amp []complex128, d0, d1 complex128, k uint, stride, cmask uint64, scale0, scale1 bool, start, end uint64) {
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		if i0&cmask != cmask {
			continue
		}
		if scale0 {
			amp[i0] *= d0
		}
		if scale1 {
			amp[i0|stride] *= d1
		}
	}
}

// ApplyControlledX applies a (multi-)controlled NOT by swapping the
// amplitude pairs whose controls are satisfied — no complex arithmetic at
// all, where the generic kernel spends a full 2x2 complex multiply per
// pair. CNOT and Toffoli both land here.
//
//qemu:hotpath
func (s *State) ApplyControlledX(k uint, controls []uint) {
	if len(controls) == 0 {
		s.ApplyX(k)
		return
	}
	s.checkTargetControls(k, controls)
	cmask := bitops.ControlMask(controls)
	half := s.Dim() >> 1
	stride := uint64(1) << k
	if s.parallelism(half) <= 1 {
		ctrlXChunk(s.amp, k, stride, cmask, 0, half)
		return
	}
	s.parallelRange(half, func(start, end uint64) {
		ctrlXChunk(s.amp, k, stride, cmask, start, end)
	})
}

// ctrlXChunk is xChunk restricted to pairs whose control bits are all
// set.
func ctrlXChunk(amp []complex128, k uint, stride, cmask, start, end uint64) {
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		if i0&cmask != cmask {
			continue
		}
		i1 := i0 | stride
		amp[i0], amp[i1] = amp[i1], amp[i0]
	}
}

// ApplyHadamard applies H to qubit k with the multiply count minimised:
// one scale and one add/sub per output instead of a generic 2x2 product.
//
//qemu:hotpath
func (s *State) ApplyHadamard(k uint) {
	s.checkTarget(k)
	half := s.Dim() >> 1
	stride := uint64(1) << k
	if s.parallelism(half) <= 1 {
		hadamardChunk(s.amp, k, stride, 0, half)
		return
	}
	s.parallelRange(half, func(start, end uint64) {
		hadamardChunk(s.amp, k, stride, start, end)
	})
}

// hadamardChunk runs the scale-and-add/sub Hadamard butterfly over
// flat indices [start, end).
func hadamardChunk(amp []complex128, k uint, stride, start, end uint64) {
	const invSqrt2 = 0.7071067811865476
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		i1 := i0 | stride
		a0, a1 := amp[i0], amp[i1]
		amp[i0] = complex(invSqrt2*(real(a0)+real(a1)), invSqrt2*(imag(a0)+imag(a1)))
		amp[i1] = complex(invSqrt2*(real(a0)-real(a1)), invSqrt2*(imag(a0)-imag(a1)))
	}
}

// ApplyGate dispatches g to the most specialised kernel available. This is
// the paper's "take advantage of the structure of gate matrices" strategy:
// diagonal and anti-diagonal gates never run the dense kernel.
func (s *State) ApplyGate(g gates.Gate) {
	switch g.Kind() {
	case gates.Identity:
		if g.Matrix[0] != 1 {
			s.ApplyControlledDiag(g.Matrix[0], g.Matrix[3], g.Target, g.Controls)
		}
	case gates.Diagonal:
		s.ApplyControlledDiag(g.Matrix[0], g.Matrix[3], g.Target, g.Controls)
	case gates.AntiDiagonal:
		if g.Matrix[1] == 1 && g.Matrix[2] == 1 {
			s.ApplyControlledX(g.Target, g.Controls)
			return
		}
		s.ApplyControlledMatrix2(g.Matrix, g.Target, g.Controls)
	default:
		if len(g.Controls) == 0 && g.Matrix == gates.MatH {
			s.ApplyHadamard(g.Target)
			return
		}
		s.ApplyControlledMatrix2(g.Matrix, g.Target, g.Controls)
	}
}

// ApplyGateGeneric applies g through the dense 2x2 kernel regardless of
// structure. The qHiPSTER-class baseline and the kernel-specialisation
// ablation use it.
func (s *State) ApplyGateGeneric(g gates.Gate) {
	s.ApplyControlledMatrix2(g.Matrix, g.Target, g.Controls)
}

// scratchBuf returns the State's out-of-place buffer, allocating it on
// first use. Its contents are unspecified.
func (s *State) scratchBuf() []complex128 {
	if uint64(len(s.scratch)) != s.Dim() {
		s.scratch = make([]complex128, s.Dim())
	}
	return s.scratch
}

// ApplyPermutation relabels basis states: amplitude at index i moves to
// index f(i). f must be a bijection on [0, 2^n); the classical-function
// emulation of Section 3.1 reduces reversible circuits to exactly this.
// The permutation is applied out of place into the State's scratch buffer,
// which is then swapped with the live amplitude slice — no allocation
// after the first call. Because every destination index is written exactly
// once for a bijection, the scratch buffer is not cleared first; a
// non-bijective f leaves unspecified stale values at unreached indices.
func (s *State) ApplyPermutation(f func(uint64) uint64) {
	dim := s.Dim()
	out := s.scratchBuf()
	if s.parallelism(dim) <= 1 {
		// Closure-free serial path: together with the buffer swap this
		// makes a steady-state permutation allocation-free.
		for i, a := range s.amp {
			out[f(uint64(i))] = a
		}
	} else {
		s.parallelRange(dim, func(start, end uint64) {
			for i := start; i < end; i++ {
				out[f(i)] = s.amp[i]
			}
		})
	}
	s.amp, s.scratch = out, s.amp
}

// ApplyDiagonalFunc multiplies amplitude i by phase(i). Emulated diagonal
// unitaries (e.g. e^{i f(x)} oracles) use it.
func (s *State) ApplyDiagonalFunc(phase func(uint64) complex128) {
	s.parallelRange(s.Dim(), func(start, end uint64) {
		for i := start; i < end; i++ {
			s.amp[i] *= phase(i)
		}
	})
}

// MapRegister applies an in-register classical map: the field of width
// `width` bits starting at bit `pos` is replaced by f(old field, rest)
// where rest is the index with the field zeroed. f must be a bijection of
// the field value for every fixed rest, which keeps the whole map a
// permutation. This expresses e.g. (a,b,0) -> (a,b,a*b) directly.
func (s *State) MapRegister(pos, width uint, f func(field, rest uint64) uint64) {
	mask := bitops.Mask(width) << pos
	s.ApplyPermutation(func(i uint64) uint64 {
		field := (i & mask) >> pos
		rest := i &^ mask
		return rest | ((f(field, rest) << pos) & mask)
	})
}
