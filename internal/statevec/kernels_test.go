package statevec

import (
	"math/cmplx"
	"testing"

	"repro/internal/gates"
	"repro/internal/rng"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

// TestKernelValidation pins the validation contract of the single-qubit
// kernels: out-of-range targets, out-of-range controls and control==target
// all panic before any amplitude is touched. ApplyControlledDiag used to
// skip every check (an out-of-range target crashed with a raw index panic,
// an out-of-range control made the gate a silent no-op because its mask
// bit could never match); it now shares ApplyControlledMatrix2's contract.
func TestKernelValidation(t *testing.T) {
	d0, d1 := complex(1, 0), complex(0, 1)
	m := gates.MatH
	cases := map[string]func(s *State){
		"ApplyMatrix2/target-oob":   func(s *State) { s.ApplyMatrix2(m, 3) },
		"ApplyX/target-oob":         func(s *State) { s.ApplyX(3) },
		"ApplyHadamard/target-oob":  func(s *State) { s.ApplyHadamard(3) },
		"ApplyDiag/target-oob":      func(s *State) { s.ApplyDiag(d0, d1, 3) },
		"ApplyDiag/target-oob-noop": func(s *State) { s.ApplyDiag(1, 1, 3) },

		"ApplyControlledMatrix2/target-oob":        func(s *State) { s.ApplyControlledMatrix2(m, 3, []uint{0}) },
		"ApplyControlledMatrix2/control-oob":       func(s *State) { s.ApplyControlledMatrix2(m, 0, []uint{3}) },
		"ApplyControlledMatrix2/control-eq-target": func(s *State) { s.ApplyControlledMatrix2(m, 1, []uint{1}) },

		"ApplyControlledDiag/target-oob":        func(s *State) { s.ApplyControlledDiag(d0, d1, 3, []uint{0}) },
		"ApplyControlledDiag/control-oob":       func(s *State) { s.ApplyControlledDiag(d0, d1, 0, []uint{3}) },
		"ApplyControlledDiag/control-eq-target": func(s *State) { s.ApplyControlledDiag(d0, d1, 1, []uint{1}) },
		// Validation must fire even when the diagonal is the identity and
		// the kernel would otherwise exit without sweeping.
		"ApplyControlledDiag/target-oob-noop": func(s *State) { s.ApplyControlledDiag(1, 1, 3, []uint{0}) },

		"ApplyControlledX/target-oob":        func(s *State) { s.ApplyControlledX(3, []uint{0}) },
		"ApplyControlledX/control-oob":       func(s *State) { s.ApplyControlledX(0, []uint{3}) },
		"ApplyControlledX/control-eq-target": func(s *State) { s.ApplyControlledX(1, []uint{1}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			s := NewRandom(3, rng.New(1))
			before := s.Clone()
			mustPanic(t, name, func() { fn(s) })
			if s.MaxDiff(before) != 0 {
				t.Errorf("%s modified the state before panicking", name)
			}
		})
	}
}

// TestControlledDiagOutOfRangeControlNoLongerNoOp is the regression test
// for the silent-no-op half of the ApplyControlledDiag bug: before the
// fix, a control index >= n produced a mask bit that no amplitude index
// can set, so the gate silently did nothing instead of failing loudly.
func TestControlledDiagOutOfRangeControlNoLongerNoOp(t *testing.T) {
	s := NewRandom(3, rng.New(2))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range control must panic, not silently no-op")
		}
	}()
	s.ApplyControlledDiag(1, complex(0, 1), 0, []uint{7})
}

// TestControlledKernelsStillCorrect re-checks a CZ and a Toffoli through
// the now-validating kernels against first principles.
func TestControlledKernelsStillCorrect(t *testing.T) {
	src := rng.New(3)
	s := NewRandom(3, src)
	orig := s.Clone()
	// CZ on (0,1): amplitude picks up -1 iff bits 0 and 1 are both set.
	s.ApplyControlledDiag(1, -1, 1, []uint{0})
	for i := uint64(0); i < s.Dim(); i++ {
		want := orig.Amplitude(i)
		if i&0b011 == 0b011 {
			want = -want
		}
		if cmplx.Abs(s.Amplitude(i)-want) > eps {
			t.Fatalf("CZ wrong at %d", i)
		}
	}
	// Toffoli via ApplyControlledX matches the truth table.
	s2 := NewRandom(3, src)
	orig2 := s2.Clone()
	s2.ApplyControlledX(2, []uint{0, 1})
	for i := uint64(0); i < s2.Dim(); i++ {
		j := i
		if i&0b011 == 0b011 {
			j = i ^ 0b100
		}
		if cmplx.Abs(s2.Amplitude(j)-orig2.Amplitude(i)) > eps {
			t.Fatalf("CCX wrong at %d", i)
		}
	}
}
