package statevec

import (
	"math"

	"repro/internal/bitops"
	"repro/internal/gates"
)

// ApplyKraus1 applies the (generally non-unitary) 2x2 operator m to qubit
// k and returns the resulting probability mass <ψ|K†K|ψ>, accumulated in
// the same sweep — the trajectory runner's branch-select step: apply the
// sampled Kraus operator, read off its mass, renormalise. The state is
// left unnormalised; callers rescale with RenormalizeMass (or, for
// sharded owners, reduce the per-shard masses first and rescale every
// shard by the global mass).
//
//qemu:hotpath
func (s *State) ApplyKraus1(m gates.Matrix2, k uint) float64 {
	s.checkTarget(k)
	half := s.Dim() >> 1
	stride := uint64(1) << k
	if s.parallelism(half) <= 1 {
		return kraus1Chunk(s.amp, m, k, stride, 0, half)
	}
	return parallelReduce(s, half, func(start, end uint64) float64 {
		return kraus1Chunk(s.amp, m, k, stride, start, end)
	}, addFloat)
}

// kraus1Chunk runs the dense 2x2 butterfly over flat indices [start, end)
// and returns the probability mass of the written amplitudes.
func kraus1Chunk(amp []complex128, m gates.Matrix2, k uint, stride, start, end uint64) float64 {
	var acc float64
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		i1 := i0 | stride
		a0, a1 := amp[i0], amp[i1]
		b0 := m[0]*a0 + m[1]*a1
		b1 := m[2]*a0 + m[3]*a1
		amp[i0], amp[i1] = b0, b1
		acc += real(b0)*real(b0) + imag(b0)*imag(b0) + real(b1)*real(b1) + imag(b1)*imag(b1)
	}
	return acc
}

// RenormalizeMass rescales the state by 1/sqrt(mass), restoring unit norm
// after a Kraus application whose branch mass the caller already knows.
// It panics on non-positive mass: a zero-mass branch can never be the
// sampled one (its jump probability was zero).
func (s *State) RenormalizeMass(mass float64) {
	if !(mass > 0) {
		panic("statevec: renormalising zero-mass state")
	}
	s.Scale(complex(1/math.Sqrt(mass), 0))
}

// Reset returns the state to |0...0> in place, reusing the allocation.
// The trajectory runner calls it between shots so an n-qubit batch costs
// one vector, not one per trajectory.
func (s *State) Reset() {
	if s.parallelism(s.Dim()) <= 1 {
		clear(s.amp)
	} else {
		s.parallelRange(s.Dim(), func(start, end uint64) {
			clear(s.amp[start:end])
		})
	}
	s.amp[0] = 1
}
