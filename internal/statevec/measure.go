package statevec

import (
	"math"
	"sort"

	"repro/internal/bitops"
	"repro/internal/rng"
)

// Probability returns the probability that measuring qubit k yields 1.
func (s *State) Probability(k uint) float64 {
	if k >= s.n {
		panic("statevec: qubit out of range")
	}
	stride := uint64(1) << k
	half := s.Dim() >> 1
	var p float64
	for c := uint64(0); c < half; c++ {
		i1 := bitops.InsertZeroBit(c, k) | stride
		a := s.amp[i1]
		p += real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Probabilities returns |amp_i|^2 for every basis state — the complete
// measurement distribution the paper's Section 3.4 says an emulator can
// hand out in one shot, removing the need for repeated sampling.
func (s *State) Probabilities() []float64 {
	p := make([]float64, s.Dim())
	parallelRange(s.Dim(), func(start, end uint64) {
		for i := start; i < end; i++ {
			a := s.amp[i]
			p[i] = real(a)*real(a) + imag(a)*imag(a)
		}
	})
	return p
}

// Measure performs a projective measurement of qubit k, collapsing the
// state and renormalising. It returns the observed bit.
func (s *State) Measure(k uint, src *rng.Source) uint64 {
	p1 := s.Probability(k)
	var outcome uint64
	if src.Float64() < p1 {
		outcome = 1
	}
	s.Collapse(k, outcome)
	return outcome
}

// Collapse projects qubit k onto the given outcome (0 or 1) and
// renormalises. It panics if the outcome has zero probability.
func (s *State) Collapse(k uint, outcome uint64) {
	if k >= s.n {
		panic("statevec: qubit out of range")
	}
	stride := uint64(1) << k
	var norm float64
	parallelRange(s.Dim(), func(start, end uint64) {
		for i := start; i < end; i++ {
			if (i&stride != 0) != (outcome == 1) {
				s.amp[i] = 0
			}
		}
	})
	for _, a := range s.amp {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if norm == 0 {
		panic("statevec: collapse onto zero-probability outcome")
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= inv
	}
}

// Sample draws one full-register measurement outcome without collapsing
// the state, via inverse-CDF sampling over the amplitude weights. This is
// what a real quantum computer returns per run: n bits.
func (s *State) Sample(src *rng.Source) uint64 {
	r := src.Float64()
	var acc float64
	for i, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			return uint64(i)
		}
	}
	return s.Dim() - 1
}

// SampleMany draws k independent outcomes by sorting uniforms against the
// cumulative distribution, costing O(2^n + k log k) instead of O(k 2^n).
func (s *State) SampleMany(k int, src *rng.Source) []uint64 {
	rs := make([]float64, k)
	for i := range rs {
		rs[i] = src.Float64()
	}
	sort.Float64s(rs)
	out := make([]uint64, k)
	var acc float64
	idx := 0
	for i, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		for idx < k && rs[idx] < acc {
			out[idx] = uint64(i)
			idx++
		}
		if idx == k {
			break
		}
	}
	for ; idx < k; idx++ {
		out[idx] = s.Dim() - 1
	}
	// Restore random order so callers see i.i.d. draws.
	for i := k - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// ExpectationZ returns <Z_k>, the expectation of the Pauli-Z observable on
// qubit k, computed exactly from the distribution (no sampling).
func (s *State) ExpectationZ(k uint) float64 {
	return 1 - 2*s.Probability(k)
}

// ExpectationDiagonal returns the exact expectation of a diagonal
// observable with eigenvalue obs(i) on basis state i. Section 3.4's point:
// the emulator evaluates this in one pass over the state, where hardware
// needs many repetitions for statistical accuracy.
func (s *State) ExpectationDiagonal(obs func(uint64) float64) float64 {
	var acc float64
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p != 0 {
			acc += p * obs(uint64(i))
		}
	}
	return acc
}

// EstimateDiagonal estimates the same expectation the way hardware must:
// by drawing shots samples and averaging, returning the estimate and its
// standard error. The Section 3.4 ablation compares it to the exact path.
func (s *State) EstimateDiagonal(obs func(uint64) float64, shots int, src *rng.Source) (mean, stderr float64) {
	if shots <= 0 {
		panic("statevec: shots must be positive")
	}
	var sum, sumSq float64
	for _, x := range s.SampleMany(shots, src) {
		v := obs(x)
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(shots)
	variance := sumSq/float64(shots) - mean*mean
	if variance < 0 {
		variance = 0
	}
	stderr = math.Sqrt(variance / float64(shots))
	return mean, stderr
}
