package statevec

import (
	"math"
	"sort"

	"repro/internal/bitops"
	"repro/internal/rng"
)

// checkQubit panics when measurement qubit k is out of range, with the
// same message the measurement paths have always raised.
func (s *State) checkQubit(k uint) {
	if k >= s.n {
		panic("statevec: qubit out of range")
	}
}

// conditionalMass returns the probability mass of the branch where qubit k
// reads the given outcome bit, reduced in parallel over the 2^(n-1)
// amplitudes of that branch.
func (s *State) conditionalMass(k uint, outcome uint64) float64 {
	stride := uint64(1) << k
	sel := uint64(0)
	if outcome == 1 {
		sel = stride
	}
	half := s.Dim() >> 1
	return parallelReduce(s, half, func(start, end uint64) float64 {
		var acc float64
		for c := start; c < end; c++ {
			a := s.amp[bitops.InsertZeroBit(c, k)|sel]
			acc += real(a)*real(a) + imag(a)*imag(a)
		}
		return acc
	}, addFloat)
}

// Probability returns the probability that measuring qubit k yields 1.
func (s *State) Probability(k uint) float64 {
	s.checkQubit(k)
	return s.conditionalMass(k, 1)
}

// BranchMass returns the probability mass of the branch where qubit k
// reads the given outcome bit, as one half-vector reduction. Unlike
// 1 - Probability(k), the outcome-0 branch is summed directly, so shard
// owners get a non-negative mass in a single pass.
func (s *State) BranchMass(k uint, outcome uint64) float64 {
	s.checkQubit(k)
	return s.conditionalMass(k, outcome&1)
}

// Probabilities returns |amp_i|^2 for every basis state — the complete
// measurement distribution the paper's Section 3.4 says an emulator can
// hand out in one shot, removing the need for repeated sampling.
func (s *State) Probabilities() []float64 {
	p := make([]float64, s.Dim())
	s.parallelRange(s.Dim(), func(start, end uint64) {
		for i := start; i < end; i++ {
			a := s.amp[i]
			p[i] = real(a)*real(a) + imag(a)*imag(a)
		}
	})
	return p
}

// Measure performs a projective measurement of qubit k, collapsing the
// state and renormalising. It returns the observed bit.
func (s *State) Measure(k uint, src *rng.Source) uint64 {
	p1 := s.Probability(k)
	if src.Float64() < p1 {
		// The branch mass is already known: zero the other branch and
		// rescale this one in a single fused sweep.
		s.collapseScaled(k, 1, p1)
		return 1
	}
	s.Collapse(k, 0)
	return 0
}

// Collapse projects qubit k onto the given outcome (0 or 1) and
// renormalises. It panics if the outcome has zero probability.
//
// The old three-pass implementation (zero the discarded branch, re-read
// the whole vector for the norm, re-read to rescale) is fused: one
// half-vector reduction for the kept branch's mass, then one sweep that
// zeroes and rescales together.
func (s *State) Collapse(k uint, outcome uint64) {
	s.checkQubit(k)
	keep := s.conditionalMass(k, outcome&1)
	if keep == 0 {
		panic("statevec: collapse onto zero-probability outcome")
	}
	s.collapseScaled(k, outcome&1, keep)
}

// CollapseScaled projects qubit k onto the given outcome like Collapse,
// but rescales by an externally supplied branch mass instead of the
// shard's own: the kept branch is multiplied by 1/sqrt(keep). Sharded
// owners (internal/cluster) need this because a single shard's local
// branch mass is not the global one — the caller reduces masses across
// shards first and hands every shard the same keep.
func (s *State) CollapseScaled(k uint, outcome uint64, keep float64) {
	s.checkQubit(k)
	if keep == 0 {
		panic("statevec: collapse onto zero-probability outcome")
	}
	s.collapseScaled(k, outcome&1, keep)
}

// collapseScaled zeroes the branch where qubit k differs from outcome and
// multiplies the kept branch by 1/sqrt(keep), in one parallel sweep.
//
//qemu:hotpath
func (s *State) collapseScaled(k uint, outcome uint64, keep float64) {
	stride := uint64(1) << k
	inv := complex(1/math.Sqrt(keep), 0)
	half := s.Dim() >> 1
	keepOne := outcome == 1
	if s.parallelism(half) <= 1 {
		collapseChunk(s.amp, k, stride, inv, keepOne, 0, half)
		return
	}
	s.parallelRange(half, func(start, end uint64) {
		collapseChunk(s.amp, k, stride, inv, keepOne, start, end)
	})
}

// collapseChunk zeroes the discarded branch and rescales the kept one
// over flat indices [start, end).
func collapseChunk(amp []complex128, k uint, stride uint64, inv complex128, keepOne bool, start, end uint64) {
	for c := start; c < end; c++ {
		i0 := bitops.InsertZeroBit(c, k)
		i1 := i0 | stride
		if keepOne {
			amp[i0] = 0
			amp[i1] *= inv
		} else {
			amp[i0] *= inv
			amp[i1] = 0
		}
	}
}

// massChunks computes the per-chunk probability masses of the amplitude
// vector under the State's chunk plan — the parallel prefix-sum skeleton
// the inverse-CDF samplers walk — and their total.
func (s *State) massChunks() (chunks, []float64, float64) {
	ck := s.chunksFor(s.Dim())
	masses := make([]float64, ck.n)
	s.runChunks(ck, func(i int, lo, hi uint64) {
		var acc float64
		for _, a := range s.amp[lo:hi] {
			acc += real(a)*real(a) + imag(a)*imag(a)
		}
		masses[i] = acc
	})
	var total float64
	for _, m := range masses {
		total += m
	}
	return ck, masses, total
}

// lastNonzero returns the highest basis index with nonzero probability. It
// panics on the zero vector.
func (s *State) lastNonzero() uint64 {
	for i := s.Dim(); i > 0; i-- {
		if s.amp[i-1] != 0 {
			return i - 1
		}
	}
	panic("statevec: sampling from the zero vector")
}

// Sample draws one full-register measurement outcome without collapsing
// the state, via inverse-CDF sampling over the amplitude weights. This is
// what a real quantum computer returns per run: n bits.
//
// The walk tolerates float drift in the state's norm: the uniform variate
// is compared against the actually accumulated mass, so an almost-but-not-
// quite normalised state can never spuriously return Dim()-1 — the
// fallthrough lands on the highest nonzero-probability outcome instead.
// Serial and chunk-parallel paths share these semantics (raw uniform
// against raw accumulated mass), as do ResolveCDF and the distributed
// sampler of internal/cluster built on it.
func (s *State) Sample(src *rng.Source) uint64 {
	r := src.Float64()
	if s.parallelism(s.Dim()) <= 1 {
		return s.sampleSerial(r)
	}
	ck, masses, total := s.massChunks()
	if total == 0 {
		panic("statevec: sampling from the zero vector")
	}
	target := r
	var acc float64
	for i := 0; i < ck.n; i++ {
		if target < acc+masses[i] {
			lo, hi := ck.bounds(i)
			t := target - acc
			var local float64
			last := uint64(0)
			haveLast := false
			for j := lo; j < hi; j++ {
				a := s.amp[j]
				p := real(a)*real(a) + imag(a)*imag(a)
				local += p
				if p > 0 {
					last = j
					haveLast = true
				}
				if t < local {
					return j
				}
			}
			// Rounding pushed the target past the chunk's rescanned mass;
			// clamp to the chunk's last supported outcome.
			if haveLast {
				return last
			}
		}
		acc += masses[i]
	}
	return s.lastNonzero()
}

// sampleSerial is the single-threaded early-exit CDF walk: it stops at the
// sampled index (half the vector in expectation) instead of paying a full
// mass pass first.
func (s *State) sampleSerial(r float64) uint64 {
	var acc float64
	last := uint64(0)
	haveLast := false
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		acc += p
		if p > 0 {
			last = uint64(i)
			haveLast = true
		}
		if r < acc {
			return uint64(i)
		}
	}
	if haveLast {
		return last
	}
	panic("statevec: sampling from the zero vector")
}

// SampleMany draws k independent outcomes by sorting uniforms against the
// cumulative distribution, costing O(2^n + k log k) instead of O(k 2^n).
// The CDF walk is chunk-parallel via ResolveCDF: per-chunk masses form a
// prefix sum, each worker then resolves the uniforms that land in its
// chunk. Like Sample, it clamps fallthrough draws (norm drift) to
// supported outcomes.
func (s *State) SampleMany(k int, src *rng.Source) []uint64 {
	rs := make([]float64, k)
	for i := range rs {
		rs[i] = src.Float64()
	}
	sort.Float64s(rs)
	out := make([]uint64, k)
	s.ResolveCDF(rs, out)
	// Restore random order so callers see i.i.d. draws.
	for i := k - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// sampleManySerial resolves the sorted uniforms rs in one early-exit pass.
func (s *State) sampleManySerial(rs []float64, out []uint64) {
	k := len(rs)
	var acc float64
	last := uint64(0)
	haveLast := false
	idx := 0
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		acc += p
		if p > 0 {
			last = uint64(i)
			haveLast = true
		}
		for idx < k && rs[idx] < acc {
			out[idx] = uint64(i)
			idx++
		}
		if idx == k {
			return
		}
	}
	if !haveLast {
		panic("statevec: sampling from the zero vector")
	}
	for ; idx < k; idx++ {
		out[idx] = last
	}
}

// unresolved marks a draw no chunk resolved (pure rounding fallthrough).
const unresolved = ^uint64(0)

// ResolveCDF resolves sorted ascending cumulative-mass targets ts against
// the amplitude-weight CDF, writing the matched basis indices to out
// (len(out) must equal len(ts)). A target t selects the first index whose
// running mass sum exceeds t; targets at or beyond the total mass clamp to
// the highest supported outcome (float-drift tolerance). Sharded owners
// (internal/cluster) use it to sample a distributed register: the global
// uniforms are partitioned by per-shard masses and each shard resolves its
// targets locally, on its own worker pool.
func (s *State) ResolveCDF(ts []float64, out []uint64) {
	if len(ts) == 0 {
		return
	}
	if s.parallelism(s.Dim()) <= 1 {
		s.sampleManySerial(ts, out)
		return
	}
	s.sampleManyChunked(ts, out)
}

// sampleManyChunked resolves the sorted cumulative targets with the
// parallel prefix-sum walk: per-chunk masses form a prefix sum, the
// targets are partitioned by it, and each chunk's slice is resolved
// concurrently.
func (s *State) sampleManyChunked(ts []float64, out []uint64) {
	ck, masses, total := s.massChunks()
	if total == 0 {
		panic("statevec: sampling from the zero vector")
	}
	prefix := make([]float64, ck.n+1)
	for i, m := range masses {
		prefix[i+1] = prefix[i] + m
	}
	for i := range out {
		out[i] = unresolved
	}
	s.runChunks(ck, func(i int, lo, hi uint64) {
		jlo := sort.SearchFloat64s(ts, prefix[i])
		jhi := sort.SearchFloat64s(ts, prefix[i+1])
		if jlo == jhi {
			return
		}
		local := prefix[i]
		idx := jlo
		last := uint64(0)
		haveLast := false
		for j := lo; j < hi && idx < jhi; j++ {
			a := s.amp[j]
			p := real(a)*real(a) + imag(a)*imag(a)
			local += p
			if p > 0 {
				last = j
				haveLast = true
			}
			for idx < jhi && ts[idx] < local {
				out[idx] = j
				idx++
			}
		}
		if haveLast {
			for ; idx < jhi; idx++ {
				out[idx] = last
			}
		}
	})
	for i, v := range out {
		if v == unresolved {
			out[i] = s.lastNonzero()
		}
	}
}

// ExpectationZ returns <Z_k>, the expectation of the Pauli-Z observable on
// qubit k, computed exactly from the distribution (no sampling).
func (s *State) ExpectationZ(k uint) float64 {
	return 1 - 2*s.Probability(k)
}

// ExpectationDiagonal returns the exact expectation of a diagonal
// observable with eigenvalue obs(i) on basis state i. Section 3.4's point:
// the emulator evaluates this in one pass over the state, where hardware
// needs many repetitions for statistical accuracy. The pass is a parallel
// reduction; obs is only evaluated on supported basis states and must be
// safe to call from multiple goroutines.
func (s *State) ExpectationDiagonal(obs func(uint64) float64) float64 {
	return parallelReduce(s, s.Dim(), func(start, end uint64) float64 {
		var acc float64
		for i := start; i < end; i++ {
			a := s.amp[i]
			p := real(a)*real(a) + imag(a)*imag(a)
			if p != 0 {
				acc += p * obs(i)
			}
		}
		return acc
	}, addFloat)
}

// EstimateDiagonal estimates the same expectation the way hardware must:
// by drawing shots samples and averaging, returning the estimate and its
// standard error. The Section 3.4 ablation compares it to the exact path.
// The standard error uses the unbiased sample variance (Bessel's
// correction, shots-1 in the denominator); with a single shot it is
// reported as 0, as no spread information exists.
func (s *State) EstimateDiagonal(obs func(uint64) float64, shots int, src *rng.Source) (mean, stderr float64) {
	if shots <= 0 {
		panic("statevec: shots must be positive")
	}
	var sum, sumSq float64
	for _, x := range s.SampleMany(shots, src) {
		v := obs(x)
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(shots)
	if shots > 1 {
		variance := (sumSq - float64(shots)*mean*mean) / float64(shots-1)
		if variance < 0 {
			variance = 0
		}
		stderr = math.Sqrt(variance / float64(shots))
	}
	return mean, stderr
}
