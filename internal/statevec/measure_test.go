package statevec

import (
	"math"
	"testing"

	"repro/internal/gates"
	"repro/internal/rng"
)

func TestProbabilityUniform(t *testing.T) {
	s := New(4)
	for q := uint(0); q < 4; q++ {
		s.ApplyGate(gates.H(q))
	}
	for q := uint(0); q < 4; q++ {
		if p := s.Probability(q); math.Abs(p-0.5) > eps {
			t.Errorf("P(q%d=1) = %v, want 0.5", q, p)
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	src := rng.New(1)
	s := NewRandom(7, src)
	var sum float64
	for _, p := range s.Probabilities() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestCollapse(t *testing.T) {
	s := New(2)
	s.ApplyGate(gates.H(0))
	s.ApplyGate(gates.CNOT(0, 1))
	s.Collapse(0, 1)
	// Bell state collapsed on qubit 0 = 1 must be |11>.
	if math.Abs(real(s.Amplitude(3))-1) > eps {
		t.Fatalf("collapse gave %v", s.Amplitudes())
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Error("collapse broke normalisation")
	}
}

func TestCollapseZeroProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("collapse onto zero-probability outcome did not panic")
		}
	}()
	New(2).Collapse(0, 1) // |00> has P(q0=1) = 0
}

func TestMeasureBellCorrelations(t *testing.T) {
	src := rng.New(2024)
	for trial := 0; trial < 50; trial++ {
		s := New(2)
		s.ApplyGate(gates.H(0))
		s.ApplyGate(gates.CNOT(0, 1))
		b0 := s.Measure(0, src)
		b1 := s.Measure(1, src)
		if b0 != b1 {
			t.Fatal("Bell measurement decorrelated")
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	// State (|0> + |1>)/sqrt2 on one qubit: ~50/50 sampling.
	s := New(1)
	s.ApplyGate(gates.H(0))
	src := rng.New(9)
	ones := 0
	const shots = 20000
	for i := 0; i < shots; i++ {
		ones += int(s.Sample(src))
	}
	frac := float64(ones) / shots
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("sampled fraction %v, want ~0.5", frac)
	}
}

func TestSampleManyMatchesDistribution(t *testing.T) {
	src := rng.New(10)
	s := NewRandom(4, src)
	probs := s.Probabilities()
	const shots = 60000
	counts := make([]int, s.Dim())
	for _, x := range s.SampleMany(shots, src) {
		counts[x]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / shots
		tol := 4*math.Sqrt(p*(1-p)/shots) + 1e-3
		if math.Abs(got-p) > tol {
			t.Errorf("state %d: sampled %v, exact %v (tol %v)", i, got, p, tol)
		}
	}
}

func TestExpectationZ(t *testing.T) {
	s := New(2)
	if got := s.ExpectationZ(0); math.Abs(got-1) > eps {
		t.Errorf("<Z> on |0> = %v, want 1", got)
	}
	s.ApplyX(0)
	if got := s.ExpectationZ(0); math.Abs(got+1) > eps {
		t.Errorf("<Z> on |1> = %v, want -1", got)
	}
	s.ApplyHadamard(0)
	if got := s.ExpectationZ(0); math.Abs(got) > eps {
		t.Errorf("<Z> on |-> = %v, want 0", got)
	}
}

// TestEstimateDiagonalStderrUnbiased pins the standard error on a known
// two-outcome distribution: for 0/1 draws with k ones out of N shots the
// unbiased sample variance is k(N-k)/(N(N-1)) and the stderr its square
// root over sqrt(N). Before the Bessel fix the denominator was N (the
// biased population variance), off by a factor sqrt((N-1)/N).
func TestEstimateDiagonalStderrUnbiased(t *testing.T) {
	s := New(1)
	s.ApplyGate(gates.H(0))
	obs := func(i uint64) float64 { return float64(i) }
	const shots = 1000
	// Re-draw the exact sample EstimateDiagonal will see (same seed).
	var k float64
	for _, d := range s.SampleMany(shots, rng.New(77)) {
		k += float64(d)
	}
	mean, stderr := s.EstimateDiagonal(obs, shots, rng.New(77))
	const n = float64(shots)
	wantMean := k / n
	wantStderr := math.Sqrt(k * (n - k) / (n * (n - 1)) / n)
	if math.Abs(mean-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(stderr-wantStderr) > 1e-12 {
		t.Errorf("stderr = %v, want unbiased %v", stderr, wantStderr)
	}
	biased := math.Sqrt(k * (n - k) / (n * n) / n)
	if math.Abs(stderr-biased) < math.Abs(stderr-wantStderr) {
		t.Errorf("stderr %v matches the biased estimator %v", stderr, biased)
	}
}

func TestEstimateDiagonalSingleShot(t *testing.T) {
	s := New(1)
	s.ApplyGate(gates.H(0))
	_, stderr := s.EstimateDiagonal(func(i uint64) float64 { return float64(i) }, 1, rng.New(5))
	if stderr != 0 {
		t.Errorf("single-shot stderr = %v, want 0 (no spread information)", stderr)
	}
}

// TestSampleClampsDenormalizedState is the regression test for the
// Dim()-1 fallthrough bug: when the state's norm drifts marginally below
// 1, a uniform draw landing in the residual gap must clamp to a supported
// outcome instead of returning the (zero-probability) top basis state.
// Checked on both the serial early-exit walk and the chunk-parallel walk.
func TestSampleClampsDenormalizedState(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, gap := range []float64{1e-12, 0.5} {
			s := NewZero(13)
			s.SetAmplitude(5, complex(math.Sqrt(1-gap), 0))
			s.SetParallelism(workers)
			src := rng.New(9001)
			for i := 0; i < 300; i++ {
				if got := s.Sample(src); got != 5 {
					t.Fatalf("workers=%d gap=%g: Sample returned %d, want 5", workers, gap, got)
				}
			}
			for _, x := range s.SampleMany(500, src) {
				if x != 5 {
					t.Fatalf("workers=%d gap=%g: SampleMany returned %d, want 5", workers, gap, x)
				}
			}
		}
	}
}

func TestExactVsSampledExpectation(t *testing.T) {
	// Section 3.4: the exact expectation must agree with the sampled
	// estimate within a few standard errors, while needing no shots.
	src := rng.New(123)
	s := NewRandom(6, src)
	obs := func(i uint64) float64 { return float64(i%5) - 2 }
	exact := s.ExpectationDiagonal(obs)
	mean, stderr := s.EstimateDiagonal(obs, 40000, src)
	if math.Abs(mean-exact) > 5*stderr+1e-3 {
		t.Errorf("sampled %v +- %v vs exact %v", mean, stderr, exact)
	}
}
