package statevec

import (
	"fmt"
	"sort"

	"repro/internal/bitops"
)

// MaxMatrixNQubits bounds the width of a generic multi-qubit block. At
// width 8 the dense block is 256x256 (one MiB of complex128) and each
// amplitude costs 2^8 multiplies per sweep; beyond that a fused block can
// no longer beat replaying the individual gates, so wider requests are
// rejected early instead of silently thrashing.
const MaxMatrixNQubits = 8

// checkMatrixN validates a (matrix, qubits) pair for the generic kernels
// and returns the block width. The matrix must be a dense row-major
// 2^w x 2^w block over w distinct in-range qubits.
func (s *State) checkMatrixN(m []complex128, qubits []uint) uint {
	w := uint(len(qubits))
	if w == 0 {
		panic("statevec: ApplyMatrixN with no qubits")
	}
	if w > MaxMatrixNQubits {
		panic(fmt.Sprintf("statevec: block width %d exceeds MaxMatrixNQubits=%d", w, MaxMatrixNQubits))
	}
	dim := 1 << w
	if len(m) != dim*dim {
		panic(fmt.Sprintf("statevec: matrix has %d entries, want %d for %d qubits", len(m), dim*dim, w))
	}
	var seen uint64
	for _, q := range qubits {
		if q >= s.n {
			panic("statevec: qubit out of range")
		}
		if seen&(1<<q) != 0 {
			panic("statevec: duplicate qubit in ApplyMatrixN")
		}
		seen |= 1 << q
	}
	return w
}

// ApplyMatrixN applies a dense 2^w x 2^w unitary m (row-major) to the w
// qubits listed in qubits, in a single parallel sweep of the state vector.
// Bit j of the local 2^w-dimensional index corresponds to qubits[j], so the
// qubit order chooses the basis convention of the block; ApplyMatrix2 and
// ApplyMatrix4 are the w=1,2 special cases of this kernel.
//
// This is the execution half of multi-qubit gate fusion (internal/fuse):
// a run of gates whose combined support fits in w qubits is folded into one
// such block, so the 2^n amplitudes are read and written once for the whole
// run instead of once per gate — the sweep-minimising strategy the paper
// applies to same-target single-qubit runs, generalised to k-qubit
// neighbourhoods. Cost per amplitude is 2^w complex multiplies, so wider
// blocks only pay off when they absorb enough gates; the scheduler makes
// that call, the kernel just executes it.
func (s *State) ApplyMatrixN(m []complex128, qubits []uint) {
	w := s.checkMatrixN(m, qubits)
	switch w {
	case 1:
		// Delegate to the tuned pair kernel.
		s.ApplyMatrix2([4]complex128{m[0], m[1], m[2], m[3]}, qubits[0])
		return
	case 2:
		// Delegate to the tuned two-qubit kernel, which is ~2x faster than
		// the generic gather/scatter sweep at this width. Its local value
		// convention (bit of q1 << 1 | bit of q0) matches bit j = qubits[j].
		var m4 [16]complex128
		copy(m4[:], m)
		s.ApplyMatrix4(&m4, qubits[0], qubits[1])
		return
	}
	s.applyMatrixN(m, qubits, nil)
}

// ApplyControlledMatrixN applies the 2^w x 2^w block m to qubits on the
// subspace where every control qubit reads 1. Controls must be disjoint
// from qubits. Groups whose controls are not satisfied are skipped without
// touching their amplitudes, so a controlled block costs 1/2^c of the
// uncontrolled sweep in memory traffic, exactly like the specialised
// controlled single-qubit kernels.
func (s *State) ApplyControlledMatrixN(m []complex128, qubits []uint, controls []uint) {
	if len(controls) == 0 {
		s.ApplyMatrixN(m, qubits)
		return
	}
	if s.checkMatrixN(m, qubits) == 1 {
		s.ApplyControlledMatrix2([4]complex128{m[0], m[1], m[2], m[3]}, qubits[0], controls)
		return
	}
	var qmask uint64
	for _, q := range qubits {
		qmask |= 1 << q
	}
	for _, c := range controls {
		if c >= s.n {
			panic("statevec: control qubit out of range")
		}
		if qmask&(1<<c) != 0 {
			panic("statevec: control overlaps block qubit")
		}
	}
	s.applyMatrixN(m, qubits, controls)
}

// ApplyDiagN multiplies each amplitude by d[x], where x is the local
// 2^w value read off the listed qubits (bit j of x is qubits[j]). This is
// the diagonal special case of ApplyMatrixN: one multiply per amplitude in
// a single sweep regardless of how many phase gates were folded into d, so
// a fused run of CR/Rz/T gates costs what a single diagonal gate costs.
func (s *State) ApplyDiagN(d []complex128, qubits []uint) {
	s.checkDiagN(d, qubits)
	w := uint(len(qubits))
	sorted, offs := localLayout(qubits)
	dim := 1 << w
	groups := s.Dim() >> w
	s.parallelRange(groups, func(start, end uint64) {
		for c := start; c < end; c++ {
			base := bitops.InsertZeroBits(c, sorted...)
			for x := 0; x < dim; x++ {
				s.amp[base|offs[x]] *= d[x]
			}
		}
	})
}

// checkDiagN panics unless d and qubits describe a valid diagonal
// block: width in [1, MaxMatrixNQubits], 2^w diagonal entries, and
// distinct in-range qubits. The panic messages are the kernel's
// original inline ones; hoisting them into a helper satisfies the
// validate-before-amplitude-access contract kernelvalidate checks.
func (s *State) checkDiagN(d []complex128, qubits []uint) {
	w := uint(len(qubits))
	if w == 0 || w > MaxMatrixNQubits {
		panic("statevec: ApplyDiagN width out of range")
	}
	if len(d) != 1<<w {
		panic(fmt.Sprintf("statevec: diagonal has %d entries, want %d", len(d), 1<<w))
	}
	var seen uint64
	for _, q := range qubits {
		if q >= s.n {
			panic("statevec: qubit out of range")
		}
		if seen&(1<<q) != 0 {
			panic("statevec: duplicate qubit in ApplyDiagN")
		}
		seen |= 1 << q
	}
}

// localLayout returns the ascending copy of qubits (the InsertZeroBits
// insertion points) and the offset table offs, where offs[x] is the
// global-index offset of local basis state x: bit j of x maps to qubit
// qubits[j]. Precomputing it turns the kernels' gather/scatter into
// base|offs[x] with no per-amplitude bit fiddling.
func localLayout(qubits []uint) (sorted []uint, offs []uint64) {
	sorted = append([]uint(nil), qubits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	offs = make([]uint64, 1<<uint(len(qubits)))
	for x := 1; x < len(offs); x++ {
		j := uint(0)
		for (x>>j)&1 == 0 {
			j++
		}
		offs[x] = offs[x&(x-1)] | 1<<qubits[j]
	}
	return sorted, offs
}

// applyMatrixN is the shared sweep. qubits is the caller's (validated)
// local-bit order; controls may be nil.
func (s *State) applyMatrixN(m []complex128, qubits []uint, controls []uint) {
	w := uint(len(qubits))
	dim := 1 << w
	sorted, offs := localLayout(qubits)
	cmask := bitops.ControlMask(controls)
	groups := s.Dim() >> w
	s.parallelRange(groups, func(start, end uint64) {
		// Per-worker scratch: the gathered local vector and its indices.
		vec := make([]complex128, dim)
		idx := make([]uint64, dim)
		for c := start; c < end; c++ {
			base := bitops.InsertZeroBits(c, sorted...)
			if base&cmask != cmask {
				continue
			}
			for x := 0; x < dim; x++ {
				idx[x] = base | offs[x]
				vec[x] = s.amp[idx[x]]
			}
			// Four rows at a time: independent accumulators break the
			// multiply-add dependency chain that otherwise serialises the
			// mat-vec at complex-FMA latency (dim >= 4 always holds here:
			// w=1 delegates to ApplyMatrix2).
			for r := 0; r < dim; r += 4 {
				r0 := m[(r+0)*dim : (r+1)*dim]
				r1 := m[(r+1)*dim : (r+2)*dim]
				r2 := m[(r+2)*dim : (r+3)*dim]
				r3 := m[(r+3)*dim : (r+4)*dim]
				var a0, a1, a2, a3 complex128
				for x, v := range vec {
					a0 += r0[x] * v
					a1 += r1[x] * v
					a2 += r2[x] * v
					a3 += r3[x] * v
				}
				s.amp[idx[r+0]] = a0
				s.amp[idx[r+1]] = a1
				s.amp[idx[r+2]] = a2
				s.amp[idx[r+3]] = a3
			}
		}
	})
}
