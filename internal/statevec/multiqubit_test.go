package statevec

import (
	"testing"

	"repro/internal/gates"
	"repro/internal/rng"
)

// embedGate expands a (controlled) single-qubit gate into a dense 2^w x 2^w
// block over the local qubit order `qubits` (bit j of the local index is
// qubits[j]). Reference implementation for the kernel tests.
func embedGate(g gates.Gate, qubits []uint) []complex128 {
	w := len(qubits)
	dim := 1 << w
	pos := make(map[uint]uint, w)
	for j, q := range qubits {
		pos[q] = uint(j)
	}
	tb := uint64(1) << pos[g.Target]
	var cm uint64
	for _, c := range g.Controls {
		cm |= 1 << pos[c]
	}
	m := make([]complex128, dim*dim)
	for col := 0; col < dim; col++ {
		x := uint64(col)
		if x&cm != cm {
			m[col*dim+col] = 1
			continue
		}
		x0, x1 := x&^tb, x|tb
		if x&tb == 0 {
			m[int(x0)*dim+col] += g.Matrix[0]
			m[int(x1)*dim+col] += g.Matrix[2]
		} else {
			m[int(x0)*dim+col] += g.Matrix[1]
			m[int(x1)*dim+col] += g.Matrix[3]
		}
	}
	return m
}

// mulN returns a*b for dense 2^w blocks.
func mulN(a, b []complex128, dim int) []complex128 {
	out := make([]complex128, dim*dim)
	for i := 0; i < dim; i++ {
		for k := 0; k < dim; k++ {
			aik := a[i*dim+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				out[i*dim+j] += aik * b[k*dim+j]
			}
		}
	}
	return out
}

func TestApplyMatrixNMatchesGateByGate(t *testing.T) {
	src := rng.New(321)
	for trial := 0; trial < 20; trial++ {
		n := uint(4 + src.Intn(4))
		w := 1 + src.Intn(4)
		// Pick w distinct qubits in random order.
		perm := src.Perm(int(n))
		qubits := make([]uint, w)
		for j := range qubits {
			qubits[j] = uint(perm[j])
		}
		// Random sequence of (controlled) gates supported on the block.
		var seq []gates.Gate
		for i := 0; i < 6; i++ {
			g := gates.Ry(qubits[src.Intn(w)], src.Float64()*3)
			if w > 1 && src.Intn(2) == 0 {
				c := qubits[src.Intn(w)]
				if c != g.Target {
					g = g.WithControls(c)
				}
			}
			seq = append(seq, g)
		}
		dim := 1 << w
		block := make([]complex128, dim*dim)
		for i := 0; i < dim; i++ {
			block[i*dim+i] = 1
		}
		for _, g := range seq {
			block = mulN(embedGate(g, qubits), block, dim)
		}

		ref := NewRandom(n, src)
		got := ref.Clone()
		for _, g := range seq {
			ref.ApplyGate(g)
		}
		got.ApplyMatrixN(block, qubits)
		if d := got.MaxDiff(ref); d > 1e-12 {
			t.Fatalf("trial %d (n=%d w=%d): block differs from gate-by-gate by %g", trial, n, w, d)
		}
	}
}

func TestApplyMatrixNAgreesWithMatrix4(t *testing.T) {
	src := rng.New(654)
	var m4 [16]complex128
	for i := range m4 {
		m4[i] = src.Complex()
	}
	a := NewRandom(5, src)
	b := a.Clone()
	// ApplyMatrix4 acts on local value (bit of q1 << 1) | bit of q0, which
	// matches ApplyMatrixN with qubit order [q0, q1].
	a.ApplyMatrix4(&m4, 3, 1)
	b.ApplyMatrixN(m4[:], []uint{3, 1})
	if d := a.MaxDiff(b); d > 1e-13 {
		t.Fatalf("ApplyMatrixN(w=2) disagrees with ApplyMatrix4 by %g", d)
	}
}

func TestApplyControlledMatrixNMatchesControlledGates(t *testing.T) {
	src := rng.New(987)
	for trial := 0; trial < 10; trial++ {
		n := uint(6)
		qubits := []uint{1, 4}
		controls := []uint{0, 3}
		g0 := gates.Rx(1, src.Float64()*2).WithControls(controls...)
		g1 := gates.Ry(4, src.Float64()*2).WithControls(controls...)
		// Controlled block = block of the uncontrolled pair, controls lifted
		// outside via ApplyControlledMatrixN.
		dim := 4
		block := mulN(
			embedGate(gates.Gate{Matrix: g1.Matrix, Target: g1.Target}, qubits),
			embedGate(gates.Gate{Matrix: g0.Matrix, Target: g0.Target}, qubits), dim)

		ref := NewRandom(n, src)
		got := ref.Clone()
		ref.ApplyGate(g0)
		ref.ApplyGate(g1)
		got.ApplyControlledMatrixN(block, qubits, controls)
		if d := got.MaxDiff(ref); d > 1e-12 {
			t.Fatalf("trial %d: controlled block differs by %g", trial, d)
		}
	}
}

func TestApplyMatrixNPanicsOnBadInput(t *testing.T) {
	s := New(3)
	for name, fn := range map[string]func(){
		"duplicate qubit": func() { s.ApplyMatrixN(make([]complex128, 16), []uint{1, 1}) },
		"out of range":    func() { s.ApplyMatrixN(make([]complex128, 4), []uint{7}) },
		"wrong size":      func() { s.ApplyMatrixN(make([]complex128, 9), []uint{0, 1}) },
		"control overlap": func() { s.ApplyControlledMatrixN(make([]complex128, 4), []uint{0}, []uint{0}) },
		"no qubits":       func() { s.ApplyMatrixN(nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
