package statevec

import (
	"runtime"
	"sync"
)

// parallelThreshold is the vector length below which kernels run serially;
// dispatching to the pool costs more than it saves on tiny registers.
const parallelThreshold = 1 << 12

// chunkAlign is the granularity of chunk boundaries in loop indices. Eight
// complex128 amplitudes are 128 bytes (two cache lines), so two workers
// never write the same cache line even when a kernel maps loop index i
// straight to amplitude i.
const chunkAlign = 8

// workerPool is a persistent set of goroutines owned by one State. It is
// created lazily on the first kernel invocation large enough to go
// parallel, and sized once from GOMAXPROCS at that moment; the caller's
// goroutine always executes the first chunk itself, so a pool of size w
// serves w+1-way parallelism. The pool's goroutines are shut down by a
// runtime cleanup when the owning State becomes unreachable.
type workerPool struct {
	size  int
	tasks chan func()
}

func newWorkerPool(size int) *workerPool {
	p := &workerPool{size: size, tasks: make(chan func(), 8*size)}
	for i := 0; i < size; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// ensurePool returns the State's pool, creating it on first use.
func (s *State) ensurePool() *workerPool {
	if s.pool == nil {
		w := s.maxWorkers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w < 2 {
			w = 2 // runChunks only dispatches when there is >1 chunk
		}
		s.pool = newWorkerPool(w - 1)
		// SetFinalizer rather than runtime.AddCleanup keeps the module
		// buildable on Go 1.23 (AddCleanup is 1.24-only). The finalizer
		// closes the task channel so the pool's goroutines exit when the
		// State becomes unreachable.
		runtime.SetFinalizer(s, func(st *State) { close(st.pool.tasks) })
	}
	return s.pool
}

// SetParallelism bounds the worker count the State's kernels use: 1 forces
// single-threaded execution (the variant the per-node paths of
// internal/cluster and deterministic tests want), 0 restores the
// GOMAXPROCS default. It must not be called concurrently with kernels on
// the same State.
func (s *State) SetParallelism(w int) {
	if w < 0 {
		w = 0
	}
	s.maxWorkers = w
}

// parallelism returns the number of chunks a loop over size items should
// split into.
func (s *State) parallelism(size uint64) int {
	w := s.maxWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 || size < parallelThreshold {
		return 1
	}
	// Keep at least 1024 items per worker so chunk dispatch stays cheap
	// relative to the work.
	if uint64(w) > size/1024 {
		w = int(size / 1024)
		if w < 1 {
			w = 1
		}
	}
	return w
}

// chunks describes an aligned partition of [0, size) into n chunks.
type chunks struct {
	size  uint64
	chunk uint64
	n     int
}

// makeChunks splits size items into at most w cache-line-aligned chunks.
func makeChunks(size uint64, w int) chunks {
	c := (size + uint64(w) - 1) / uint64(w)
	c = (c + chunkAlign - 1) &^ uint64(chunkAlign-1)
	if c == 0 {
		c = chunkAlign
	}
	return chunks{size: size, chunk: c, n: int((size + c - 1) / c)}
}

// bounds returns the half-open index range of chunk i.
func (ck chunks) bounds(i int) (lo, hi uint64) {
	lo = uint64(i) * ck.chunk
	hi = lo + ck.chunk
	if hi > ck.size {
		hi = ck.size
	}
	return lo, hi
}

// chunksFor plans the partition for a loop over size items under the
// State's parallelism policy.
func (s *State) chunksFor(size uint64) chunks {
	return makeChunks(size, s.parallelism(size))
}

// runChunks executes fn(i, lo, hi) for every chunk: chunks 1..n-1 on the
// worker pool, chunk 0 on the calling goroutine, then waits for all of
// them. fn must not invoke another parallel kernel on the same State (the
// pool is not re-entrant).
func (s *State) runChunks(ck chunks, fn func(i int, lo, hi uint64)) {
	if ck.n <= 1 {
		fn(0, 0, ck.size)
		return
	}
	p := s.ensurePool()
	var wg sync.WaitGroup
	wg.Add(ck.n - 1)
	for i := 1; i < ck.n; i++ {
		i := i
		lo, hi := ck.bounds(i)
		p.tasks <- func() {
			defer wg.Done()
			fn(i, lo, hi)
		}
	}
	lo, hi := ck.bounds(0)
	fn(0, lo, hi)
	wg.Wait()
}

// parallelRange invokes fn(start, end) over disjoint aligned chunks of
// [0, size) and waits for completion. Small sizes (or parallelism 1) run
// fn inline with no dispatch and no allocation.
func (s *State) parallelRange(size uint64, fn func(start, end uint64)) {
	ck := s.chunksFor(size)
	if ck.n <= 1 {
		fn(0, size)
		return
	}
	s.runChunks(ck, func(_ int, lo, hi uint64) { fn(lo, hi) })
}

// parallelReduce evaluates fn over disjoint chunks of [0, size), one
// partial accumulator per worker, and folds the partials left to right
// with combine. The fold order depends only on the chunk plan, so results
// are deterministic for a fixed parallelism setting.
func parallelReduce[A any](s *State, size uint64, fn func(start, end uint64) A, combine func(a, b A) A) A {
	ck := s.chunksFor(size)
	if ck.n <= 1 {
		return fn(0, size)
	}
	parts := make([]A, ck.n)
	s.runChunks(ck, func(i int, lo, hi uint64) { parts[i] = fn(lo, hi) })
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = combine(acc, p)
	}
	return acc
}

func addFloat(a, b float64) float64         { return a + b }
func addComplex(a, b complex128) complex128 { return a + b }
func maxFloat(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}
