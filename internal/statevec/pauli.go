package statevec

import (
	"fmt"
	"math/cmplx"

	"repro/internal/bitops"
)

// Pauli labels a single-qubit Pauli operator in an observable string.
type Pauli byte

// Pauli operator labels.
const (
	PauliI Pauli = 'I'
	PauliX Pauli = 'X'
	PauliY Pauli = 'Y'
	PauliZ Pauli = 'Z'
)

// PauliString is a tensor product of Pauli operators on selected qubits —
// the standard observable language of quantum simulation (the TFIM energy
// is a sum of ZZ and X strings). Qubits not listed act as identity.
type PauliString struct {
	Qubits []uint
	Ops    []Pauli
}

// ParsePauliString builds a PauliString from a compact spec such as
// "Z0 Z1" or "X3 Y5 Z0".
func ParsePauliString(spec string) (PauliString, error) {
	var ps PauliString
	var op Pauli
	var q uint
	var haveOp bool
	flush := func() {
		if haveOp {
			ps.Ops = append(ps.Ops, op)
			ps.Qubits = append(ps.Qubits, q)
		}
		haveOp = false
		q = 0
	}
	for i := 0; i < len(spec); i++ {
		ch := spec[i]
		switch {
		case ch == ' ':
			flush()
		case ch == 'I' || ch == 'X' || ch == 'Y' || ch == 'Z':
			flush()
			op = Pauli(ch)
			haveOp = true
		case ch >= '0' && ch <= '9':
			if !haveOp {
				return PauliString{}, fmt.Errorf("statevec: digit before operator in %q", spec)
			}
			q = q*10 + uint(ch-'0')
		default:
			return PauliString{}, fmt.Errorf("statevec: bad character %q in Pauli string", ch)
		}
	}
	flush()
	if len(ps.Ops) == 0 {
		return PauliString{}, fmt.Errorf("statevec: empty Pauli string %q", spec)
	}
	return ps, nil
}

// ExpectationPauli returns <s| P |s> for the Pauli string, computed in one
// pass without materialising P: for each basis state, the X/Y parts flip
// bits (pairing amplitudes) and the Y/Z parts contribute phases.
// The result of a Hermitian observable is real; the real part is returned.
func (s *State) ExpectationPauli(p PauliString) float64 {
	var flipMask uint64 // X and Y flip the bit
	var zMask uint64    // Z and Y read the bit as a sign
	var yCount int
	for i, op := range p.Ops {
		q := p.Qubits[i]
		if q >= s.n {
			panic("statevec: Pauli string qubit out of range")
		}
		switch op {
		case PauliI:
		case PauliX:
			flipMask |= 1 << q
		case PauliY:
			flipMask |= 1 << q
			zMask |= 1 << q
			yCount++
		case PauliZ:
			zMask |= 1 << q
		default:
			panic(fmt.Sprintf("statevec: unknown Pauli %q", op))
		}
	}
	// P|j> = phase(j) |j ^ flipMask> with
	// phase(j) = (+i)^{#Y} * (-1)^{popcount((j^flipMask) & zMask)}
	// using the convention Y|0> = i|1>, Y|1> = -i|0>.
	iPow := []complex128{1, 1i, -1, -1i}[yCount%4]
	// Parallel reduction; workers read s.amp[src] across chunk boundaries,
	// which is safe because the pass never writes.
	acc := parallelReduce(s, s.Dim(), func(start, end uint64) complex128 {
		var acc complex128
		for j := start; j < end; j++ {
			a := s.amp[j]
			if a == 0 {
				continue
			}
			src := j ^ flipMask // P maps |src> -> phase |j>
			sign := complex128(1)
			if bitops.PopCount(src&zMask)%2 == 1 {
				sign = -1
			}
			// Y sign bookkeeping: each Y contributes i if the source bit
			// is 0 and -i if 1; combined: (+i)^{#Y} * (-1)^{#Y bits set in
			// src}. The zMask popcount above already includes Y positions,
			// so only the global iPow factor remains.
			acc += cmplx.Conj(a) * iPow * sign * s.amp[src]
		}
		return acc
	}, addComplex)
	return real(acc)
}

// ExpectationPauliSum returns the expectation of a weighted sum of Pauli
// strings — e.g. a full Hamiltonian.
func (s *State) ExpectationPauliSum(coeffs []float64, terms []PauliString) float64 {
	if len(coeffs) != len(terms) {
		panic("statevec: coefficient/term length mismatch")
	}
	var acc float64
	for i, t := range terms {
		acc += coeffs[i] * s.ExpectationPauli(t)
	}
	return acc
}
