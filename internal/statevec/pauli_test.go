package statevec

import (
	"math"
	"testing"

	"repro/internal/gates"
	"repro/internal/rng"
)

func mustParse(t *testing.T, spec string) PauliString {
	t.Helper()
	ps, err := ParsePauliString(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestParsePauliString(t *testing.T) {
	ps := mustParse(t, "Z0 Z1")
	if len(ps.Ops) != 2 || ps.Ops[0] != PauliZ || ps.Qubits[1] != 1 {
		t.Fatalf("parsed %+v", ps)
	}
	ps = mustParse(t, "X12Y3")
	if ps.Qubits[0] != 12 || ps.Ops[1] != PauliY || ps.Qubits[1] != 3 {
		t.Fatalf("parsed %+v", ps)
	}
	for _, bad := range []string{"", "5", "Q0", "Z0 7Y"} {
		if _, err := ParsePauliString(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestExpectationPauliBasisStates(t *testing.T) {
	// <0|Z|0> = 1, <1|Z|1> = -1, <0|X|0> = 0.
	s := New(2)
	if got := s.ExpectationPauli(mustParse(t, "Z0")); math.Abs(got-1) > eps {
		t.Errorf("<Z0> on |00> = %v", got)
	}
	if got := s.ExpectationPauli(mustParse(t, "X0")); math.Abs(got) > eps {
		t.Errorf("<X0> on |00> = %v", got)
	}
	s.ApplyX(0)
	if got := s.ExpectationPauli(mustParse(t, "Z0")); math.Abs(got+1) > eps {
		t.Errorf("<Z0> on |01> = %v", got)
	}
}

func TestExpectationPauliEigenstates(t *testing.T) {
	// |+> is the +1 eigenstate of X; |i> (after S) of Y.
	s := New(1)
	s.ApplyHadamard(0)
	if got := s.ExpectationPauli(mustParse(t, "X0")); math.Abs(got-1) > eps {
		t.Errorf("<X> on |+> = %v", got)
	}
	s.ApplyGate(gates.S(0))
	if got := s.ExpectationPauli(mustParse(t, "Y0")); math.Abs(got-1) > eps {
		t.Errorf("<Y> on |i> = %v", got)
	}
	if got := s.ExpectationPauli(mustParse(t, "X0")); math.Abs(got) > eps {
		t.Errorf("<X> on |i> = %v", got)
	}
}

func TestExpectationPauliGHZCorrelations(t *testing.T) {
	// GHZ: <Z0 Z1> = 1, <Z0> = 0, <X0 X1 X2> = 1, <X0 X1> = 0.
	s := New(3)
	s.ApplyHadamard(0)
	s.ApplyControlledX(1, []uint{0})
	s.ApplyControlledX(2, []uint{0})
	checks := map[string]float64{
		"Z0 Z1":    1,
		"Z1 Z2":    1,
		"Z0":       0,
		"X0 X1 X2": 1,
		"X0 X1":    0,
		"Y0 Y1 X2": -1, // stabiliser identity: -Y Y X stabilises GHZ
	}
	for spec, want := range checks {
		if got := s.ExpectationPauli(mustParse(t, spec)); math.Abs(got-want) > eps {
			t.Errorf("<%s> = %v, want %v", spec, got, want)
		}
	}
}

func TestExpectationPauliAgainstGateConjugation(t *testing.T) {
	// <psi|P|psi> must equal <psi|(P applied as gates)|psi> for random
	// states: apply the string as X/Y/Z gates and take the inner product.
	src := rng.New(51)
	for trial := 0; trial < 10; trial++ {
		n := uint(5)
		s := NewRandom(n, src)
		specs := []string{"Z2", "X0 Z3", "Y1 Y4", "X0 Y1 Z2 X3", "Z0 Z1 Z2 Z3 Z4"}
		for _, spec := range specs {
			ps := mustParse(t, spec)
			applied := s.Clone()
			for i, op := range ps.Ops {
				q := ps.Qubits[i]
				switch op {
				case PauliX:
					applied.ApplyGate(gates.X(q))
				case PauliY:
					applied.ApplyGate(gates.Y(q))
				case PauliZ:
					applied.ApplyGate(gates.Z(q))
				}
			}
			want := real(s.Inner(applied))
			if got := s.ExpectationPauli(ps); math.Abs(got-want) > 1e-10 {
				t.Fatalf("<%s>: %v vs gate-conjugated %v", spec, got, want)
			}
		}
	}
}

func TestExpectationPauliSumTFIMEnergy(t *testing.T) {
	// The TFIM energy of |0...0>: -J sum <Z Z> - h sum <X> = -J (n-1).
	n := uint(4)
	s := New(n)
	var coeffs []float64
	var terms []PauliString
	for q := uint(0); q+1 < n; q++ {
		coeffs = append(coeffs, -1)
		terms = append(terms, PauliString{Qubits: []uint{q, q + 1}, Ops: []Pauli{PauliZ, PauliZ}})
	}
	for q := uint(0); q < n; q++ {
		coeffs = append(coeffs, -0.5)
		terms = append(terms, PauliString{Qubits: []uint{q}, Ops: []Pauli{PauliX}})
	}
	got := s.ExpectationPauliSum(coeffs, terms)
	if math.Abs(got-(-3)) > eps {
		t.Errorf("TFIM energy of |0000> = %v, want -3", got)
	}
}
