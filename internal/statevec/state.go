// Package statevec implements the dense state-vector representation of an
// n-qubit register: 2^n complex128 amplitudes, with shared-memory parallel
// kernels for gate application, basis-state permutations (the emulator's
// classical-function shortcut), diagonal phase functions, and measurement.
//
// The layout convention matches the paper: amplitude index i, read as an
// n-bit integer, assigns bit k of i to qubit k, with qubit 0 the least
// significant bit.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"repro/internal/rng"
)

// MaxQubits bounds the register size a single address space can hold; at 30
// qubits the vector is already 16 GiB. The bound exists to turn an
// accidental huge allocation into a clear error.
const MaxQubits = 34

// State is the wavefunction of an n-qubit register. The amplitude slice has
// length exactly 2^n. Methods that mutate the state do so in place.
type State struct {
	n   uint
	amp []complex128
}

// New returns an n-qubit register initialised to the computational basis
// state |0...0>.
func New(n uint) *State {
	s := NewZero(n)
	s.amp[0] = 1
	return s
}

// NewZero returns an n-qubit register with all amplitudes zero. Callers
// must fill it before using it as a quantum state; it exists so kernels can
// allocate scratch output vectors.
func NewZero(n uint) *State {
	if n > MaxQubits {
		panic(fmt.Sprintf("statevec: %d qubits exceeds MaxQubits=%d", n, MaxQubits))
	}
	return &State{n: n, amp: make([]complex128, uint64(1)<<n)}
}

// NewBasis returns an n-qubit register initialised to basis state |i>.
func NewBasis(n uint, i uint64) *State {
	s := NewZero(n)
	if i >= s.Dim() {
		panic(fmt.Sprintf("statevec: basis state %d out of range for %d qubits", i, n))
	}
	s.amp[i] = 1
	return s
}

// FromAmplitudes wraps amps (whose length must be a power of two) as a
// State without copying. The caller keeps ownership of the slice.
func FromAmplitudes(amps []complex128) (*State, error) {
	d := uint64(len(amps))
	if d == 0 || d&(d-1) != 0 {
		return nil, fmt.Errorf("statevec: length %d is not a power of two", d)
	}
	n := uint(0)
	for (uint64(1) << n) < d {
		n++
	}
	return &State{n: n, amp: amps}, nil
}

// NewRandom returns a normalised Haar-like random state drawn from src,
// used as generic test input.
func NewRandom(n uint, src *rng.Source) *State {
	s := NewZero(n)
	for i := range s.amp {
		s.amp[i] = src.Complex()
	}
	s.Normalize()
	return s
}

// NumQubits returns n.
func (s *State) NumQubits() uint { return s.n }

// Dim returns 2^n.
func (s *State) Dim() uint64 { return uint64(len(s.amp)) }

// Amplitudes exposes the backing slice. Mutating it mutates the state.
func (s *State) Amplitudes() []complex128 { return s.amp }

// Amplitude returns amplitude i.
func (s *State) Amplitude(i uint64) complex128 { return s.amp[i] }

// SetAmplitude overwrites amplitude i; the caller is responsible for
// keeping the state normalised.
func (s *State) SetAmplitude(i uint64, a complex128) { s.amp[i] = a }

// Clone returns a deep copy of s.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// CopyFrom overwrites s with the contents of other (same qubit count).
func (s *State) CopyFrom(other *State) {
	if s.n != other.n {
		panic("statevec: CopyFrom dimension mismatch")
	}
	copy(s.amp, other.amp)
}

// Norm returns the 2-norm of the amplitude vector (1 for a valid state).
func (s *State) Norm() float64 {
	var acc float64
	for _, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(acc)
}

// Normalize rescales the state to unit norm. It panics on the zero vector.
func (s *State) Normalize() {
	nrm := s.Norm()
	if nrm == 0 {
		panic("statevec: cannot normalise the zero vector")
	}
	inv := complex(1/nrm, 0)
	for i := range s.amp {
		s.amp[i] *= inv
	}
}

// Inner returns <s|other>.
func (s *State) Inner(other *State) complex128 {
	if s.n != other.n {
		panic("statevec: Inner dimension mismatch")
	}
	var acc complex128
	for i, a := range s.amp {
		acc += cmplx.Conj(a) * other.amp[i]
	}
	return acc
}

// Fidelity returns |<s|other>|^2.
func (s *State) Fidelity(other *State) float64 {
	ip := s.Inner(other)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// MaxDiff returns the largest absolute amplitude difference between s and
// other, the metric the cross-validation tests use.
func (s *State) MaxDiff(other *State) float64 {
	if s.n != other.n {
		panic("statevec: MaxDiff dimension mismatch")
	}
	var m float64
	for i, a := range s.amp {
		if d := cmplx.Abs(a - other.amp[i]); d > m {
			m = d
		}
	}
	return m
}

// ApproxEqual reports whether every amplitude of s is within eps of other,
// ignoring any global phase difference is NOT done here: states must match
// exactly up to eps. Use FidelityClose for phase-insensitive comparison.
func (s *State) ApproxEqual(other *State, eps float64) bool {
	return s.MaxDiff(other) <= eps
}

// parallelThreshold is the vector length below which kernels run serially;
// goroutine fan-out costs more than it saves on tiny registers.
const parallelThreshold = 1 << 12

// workers returns the worker count for a loop over size items.
func workers(size uint64) int {
	w := runtime.GOMAXPROCS(0)
	if size < parallelThreshold || w <= 1 {
		return 1
	}
	if uint64(w) > size/1024 {
		w = int(size / 1024)
		if w < 1 {
			w = 1
		}
	}
	return w
}

// parallelRange invokes fn(start, end) over disjoint chunks of [0, size)
// from multiple goroutines and waits for completion.
func parallelRange(size uint64, fn func(start, end uint64)) {
	w := uint64(workers(size))
	if w <= 1 {
		fn(0, size)
		return
	}
	var wg sync.WaitGroup
	chunk := (size + w - 1) / w
	for start := uint64(0); start < size; start += chunk {
		end := start + chunk
		if end > size {
			end = size
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			fn(lo, hi)
		}(start, end)
	}
	wg.Wait()
}
