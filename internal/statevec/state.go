// Package statevec implements the dense state-vector representation of an
// n-qubit register: 2^n complex128 amplitudes, with shared-memory parallel
// kernels for gate application, basis-state permutations (the emulator's
// classical-function shortcut), diagonal phase functions, and measurement.
//
// The layout convention matches the paper: amplitude index i, read as an
// n-bit integer, assigns bit k of i to qubit k, with qubit 0 the least
// significant bit.
//
// # Execution engine
//
// Every kernel and reduction runs through one engine (parallel.go): a
// persistent worker pool created lazily per State and sized from
// GOMAXPROCS, fed cache-line-aligned chunks of the amplitude vector.
// Gate kernels use parallelRange; Norm, Inner, MaxDiff, Probability,
// ExpectationDiagonal, ExpectationPauli and the sampling prefix sums use
// parallelReduce with per-worker partial accumulators folded in chunk
// order (deterministic for a fixed parallelism setting). Collapse fuses
// its zero + norm + rescale passes into a single sweep. SetParallelism(1)
// forces the single-threaded variants; callers that shard work themselves
// (one State per node, as internal/cluster does per shard) should use it.
//
// A State also carries a reusable scratch vector: ApplyPermutation and
// MapRegister write into it and swap it with the live amplitude slice
// instead of allocating 16*2^n bytes per call. The scratch buffer is owned
// by the State; slices previously obtained from Amplitudes may therefore
// be recycled as scratch storage after a permutation.
//
// # Validation contract
//
// Kernels panic on structurally invalid arguments — target or control
// qubit out of range, control equal to target, duplicate block qubits,
// malformed matrix sizes — before touching any amplitude. Numerical
// preconditions (normalisation, unitarity, bijectivity of permutation
// functions) are the caller's responsibility and are not checked.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/rng"
)

// MaxQubits bounds the register size a single address space can hold; at 30
// qubits the vector is already 16 GiB. The bound exists to turn an
// accidental huge allocation into a clear error.
const MaxQubits = 34

// State is the wavefunction of an n-qubit register. The amplitude slice has
// length exactly 2^n. Methods that mutate the state do so in place.
//
// A State is not safe for concurrent use; distinct States are independent
// (each owns its worker pool and scratch buffer) and may be driven from
// different goroutines freely.
type State struct {
	n   uint
	amp []complex128
	// scratch is the out-of-place buffer ApplyPermutation swaps with amp;
	// nil until the first permutation.
	scratch []complex128
	// pool is the persistent worker pool; nil until the first kernel large
	// enough to go parallel.
	pool *workerPool
	// maxWorkers caps kernel parallelism; 0 means GOMAXPROCS.
	maxWorkers int
}

// New returns an n-qubit register initialised to the computational basis
// state |0...0>.
func New(n uint) *State {
	s := NewZero(n)
	s.amp[0] = 1
	return s
}

// NewZero returns an n-qubit register with all amplitudes zero. Callers
// must fill it before using it as a quantum state; it exists so kernels can
// allocate scratch output vectors.
func NewZero(n uint) *State {
	if n > MaxQubits {
		panic(fmt.Sprintf("statevec: %d qubits exceeds MaxQubits=%d", n, MaxQubits))
	}
	return &State{n: n, amp: make([]complex128, uint64(1)<<n)}
}

// NewBasis returns an n-qubit register initialised to basis state |i>.
func NewBasis(n uint, i uint64) *State {
	s := NewZero(n)
	if i >= s.Dim() {
		panic(fmt.Sprintf("statevec: basis state %d out of range for %d qubits", i, n))
	}
	s.amp[i] = 1
	return s
}

// FromAmplitudes wraps amps (whose length must be a power of two) as a
// State without copying. The State takes ownership of the slice: after a
// permutation kernel runs, the slice may be retired to scratch storage and
// overwritten by later operations.
func FromAmplitudes(amps []complex128) (*State, error) {
	d := uint64(len(amps))
	if d == 0 || d&(d-1) != 0 {
		return nil, fmt.Errorf("statevec: length %d is not a power of two", d)
	}
	n := uint(0)
	for (uint64(1) << n) < d {
		n++
	}
	return &State{n: n, amp: amps}, nil
}

// NewRandom returns a normalised Haar-like random state drawn from src,
// used as generic test input.
func NewRandom(n uint, src *rng.Source) *State {
	s := NewZero(n)
	for i := range s.amp {
		s.amp[i] = src.Complex()
	}
	s.Normalize()
	return s
}

// NumQubits returns n.
func (s *State) NumQubits() uint { return s.n }

// Dim returns 2^n.
func (s *State) Dim() uint64 { return uint64(len(s.amp)) }

// Amplitudes exposes the backing slice. Mutating it mutates the state. The
// slice header is only valid until the next permutation kernel, which
// swaps the backing array with the State's scratch buffer.
func (s *State) Amplitudes() []complex128 { return s.amp }

// Amplitude returns amplitude i.
func (s *State) Amplitude(i uint64) complex128 { return s.amp[i] }

// SetAmplitude overwrites amplitude i; the caller is responsible for
// keeping the state normalised.
func (s *State) SetAmplitude(i uint64, a complex128) { s.amp[i] = a }

// Clone returns a deep copy of s. The copy starts with its own (lazily
// created) worker pool and scratch buffer but inherits the parallelism
// setting.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp)), maxWorkers: s.maxWorkers}
	copy(c.amp, s.amp)
	return c
}

// CopyFrom overwrites s with the contents of other (same qubit count).
func (s *State) CopyFrom(other *State) {
	if s.n != other.n {
		panic("statevec: CopyFrom dimension mismatch")
	}
	copy(s.amp, other.amp)
}

// Norm returns the 2-norm of the amplitude vector (1 for a valid state).
func (s *State) Norm() float64 {
	return math.Sqrt(s.normSquared())
}

// Mass returns the total probability mass sum |amp_i|^2 (the squared
// norm), reduced in parallel. Shard owners holding a slice of a larger
// register use it to combine per-shard masses without the precision loss
// of squaring Norm.
func (s *State) Mass() float64 { return s.normSquared() }

// Scale multiplies every amplitude by v in one parallel sweep. Sharded
// owners use it for node-local rescaling (collapse renormalisation,
// diagonal gates on node-selecting qubits).
func (s *State) Scale(v complex128) {
	if v == 1 {
		return
	}
	s.parallelRange(s.Dim(), func(start, end uint64) {
		for i := start; i < end; i++ {
			s.amp[i] *= v
		}
	})
}

// AdoptAmplitudes replaces the backing amplitude slice with amps (which
// must have length Dim) and returns the retired slice. It lets an owner of
// many shard-States (internal/cluster) run collectives that gather into
// recycled buffers and swap them in without copying — the State-level
// analogue of the scratch swap ApplyPermutation does internally.
func (s *State) AdoptAmplitudes(amps []complex128) []complex128 {
	if uint64(len(amps)) != s.Dim() {
		panic(fmt.Sprintf("statevec: AdoptAmplitudes slice has %d entries, want %d", len(amps), s.Dim()))
	}
	old := s.amp
	s.amp = amps
	return old
}

// normSquared returns the total probability mass, reduced in parallel.
func (s *State) normSquared() float64 {
	return parallelReduce(s, s.Dim(), func(start, end uint64) float64 {
		var acc float64
		for _, a := range s.amp[start:end] {
			acc += real(a)*real(a) + imag(a)*imag(a)
		}
		return acc
	}, addFloat)
}

// Normalize rescales the state to unit norm. It panics on the zero vector.
func (s *State) Normalize() {
	nrm := s.Norm()
	if nrm == 0 {
		panic("statevec: cannot normalise the zero vector")
	}
	inv := complex(1/nrm, 0)
	s.parallelRange(s.Dim(), func(start, end uint64) {
		for i := start; i < end; i++ {
			s.amp[i] *= inv
		}
	})
}

// Inner returns <s|other>.
func (s *State) Inner(other *State) complex128 {
	if s.n != other.n {
		panic("statevec: Inner dimension mismatch")
	}
	amps, oamps := s.amp, other.amp
	return parallelReduce(s, s.Dim(), func(start, end uint64) complex128 {
		var acc complex128
		o := oamps[start:end]
		for i, a := range amps[start:end] {
			acc += cmplx.Conj(a) * o[i]
		}
		return acc
	}, addComplex)
}

// Fidelity returns |<s|other>|^2.
func (s *State) Fidelity(other *State) float64 {
	ip := s.Inner(other)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// MaxDiff returns the largest absolute amplitude difference between s and
// other, the metric the cross-validation tests use.
func (s *State) MaxDiff(other *State) float64 {
	if s.n != other.n {
		panic("statevec: MaxDiff dimension mismatch")
	}
	return parallelReduce(s, s.Dim(), func(start, end uint64) float64 {
		var m float64
		o := other.amp[start:end]
		for i, a := range s.amp[start:end] {
			if d := cmplx.Abs(a - o[i]); d > m {
				m = d
			}
		}
		return m
	}, maxFloat)
}

// ApproxEqual reports whether every amplitude of s is within eps of other,
// ignoring any global phase difference is NOT done here: states must match
// exactly up to eps. Use FidelityClose for phase-insensitive comparison.
func (s *State) ApproxEqual(other *State, eps float64) bool {
	return s.MaxDiff(other) <= eps
}
