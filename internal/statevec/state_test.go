package statevec

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/bitops"
	"repro/internal/gates"
	"repro/internal/rng"
)

const eps = 1e-12

// naiveApply applies a (controlled) single-qubit gate by explicitly
// constructing the full 2^n x 2^n matrix action per amplitude — the
// Kronecker-product reference of the paper's Section 2 (Eq. 3).
func naiveApply(s *State, g gates.Gate) *State {
	n := s.NumQubits()
	dim := s.Dim()
	out := NewZero(n)
	cmask := bitops.ControlMask(g.Controls)
	tbit := uint64(1) << g.Target
	for col := uint64(0); col < dim; col++ {
		a := s.Amplitude(col)
		if a == 0 {
			continue
		}
		if col&cmask != cmask {
			out.amp[col] += a
			continue
		}
		if col&tbit == 0 {
			out.amp[col] += g.Matrix[0] * a
			out.amp[col|tbit] += g.Matrix[2] * a
		} else {
			out.amp[col&^tbit] += g.Matrix[1] * a
			out.amp[col] += g.Matrix[3] * a
		}
	}
	return out
}

func randomGates(src *rng.Source, n uint, count int) []gates.Gate {
	mk := []func(q uint) gates.Gate{
		gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.T,
		func(q uint) gates.Gate { return gates.Rx(q, 1.1) },
		func(q uint) gates.Gate { return gates.Rz(q, 0.63) },
		func(q uint) gates.Gate { return gates.Phase(q, 2.1) },
	}
	var gs []gates.Gate
	for i := 0; i < count; i++ {
		q := uint(src.Intn(int(n)))
		g := mk[src.Intn(len(mk))](q)
		// Attach 0-2 random distinct controls.
		nc := src.Intn(3)
		used := map[uint]bool{q: true}
		for len(g.Controls) < nc && len(used) < int(n) {
			c := uint(src.Intn(int(n)))
			if !used[c] {
				used[c] = true
				g.Controls = append(g.Controls, c)
			}
		}
		gs = append(gs, g)
	}
	return gs
}

func TestNewStates(t *testing.T) {
	s := New(3)
	if s.Dim() != 8 || s.Amplitude(0) != 1 {
		t.Fatal("New(3) wrong")
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatal("initial norm != 1")
	}
	b := NewBasis(3, 5)
	if b.Amplitude(5) != 1 || b.Amplitude(0) != 0 {
		t.Fatal("NewBasis wrong")
	}
}

func TestFromAmplitudes(t *testing.T) {
	if _, err := FromAmplitudes(make([]complex128, 3)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	st, err := FromAmplitudes(make([]complex128, 8))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumQubits() != 3 {
		t.Errorf("NumQubits = %d", st.NumQubits())
	}
}

func TestKernelsMatchNaive(t *testing.T) {
	src := rng.New(101)
	for trial := 0; trial < 30; trial++ {
		n := uint(2 + src.Intn(5))
		s := NewRandom(n, src)
		for _, g := range randomGates(src, n, 12) {
			want := naiveApply(s, g)
			got := s.Clone()
			got.ApplyGate(g)
			if got.MaxDiff(want) > eps {
				t.Fatalf("specialised kernel differs from naive for %v (n=%d): %g",
					g, n, got.MaxDiff(want))
			}
			gotGeneric := s.Clone()
			gotGeneric.ApplyGateGeneric(g)
			if gotGeneric.MaxDiff(want) > eps {
				t.Fatalf("generic kernel differs from naive for %v (n=%d)", g, n)
			}
			s = got
		}
	}
}

func TestNormPreservation(t *testing.T) {
	src := rng.New(7)
	s := NewRandom(8, src)
	for _, g := range randomGates(src, 8, 200) {
		s.ApplyGate(g)
	}
	if d := math.Abs(s.Norm() - 1); d > 1e-10 {
		t.Errorf("norm drifted by %g after 200 gates", d)
	}
}

func TestApplyXBasis(t *testing.T) {
	s := New(3) // |000>
	s.ApplyX(1)
	if s.Amplitude(0b010) != 1 {
		t.Fatal("X(1)|000> != |010>")
	}
	s.ApplyX(1)
	if s.Amplitude(0) != 1 {
		t.Fatal("X self-inverse failed")
	}
}

func TestHadamardTwiceIsIdentity(t *testing.T) {
	src := rng.New(5)
	s := NewRandom(6, src)
	orig := s.Clone()
	s.ApplyHadamard(3)
	s.ApplyHadamard(3)
	if s.MaxDiff(orig) > eps {
		t.Error("H^2 != I")
	}
}

func TestBellState(t *testing.T) {
	s := New(2)
	s.ApplyGate(gates.H(0))
	s.ApplyGate(gates.CNOT(0, 1))
	want := 1 / math.Sqrt2
	if cmplx.Abs(s.Amplitude(0)-complex(want, 0)) > eps ||
		cmplx.Abs(s.Amplitude(3)-complex(want, 0)) > eps ||
		cmplx.Abs(s.Amplitude(1)) > eps || cmplx.Abs(s.Amplitude(2)) > eps {
		t.Fatalf("Bell state wrong: %v", s.Amplitudes())
	}
}

func TestToffoliTruthTable(t *testing.T) {
	// Toffoli flips the target iff both controls are 1, on every basis state.
	for in := uint64(0); in < 8; in++ {
		s := NewBasis(3, in)
		s.ApplyGate(gates.Toffoli(0, 1, 2))
		want := in
		if in&0b011 == 0b011 {
			want = in ^ 0b100
		}
		if cmplx.Abs(s.Amplitude(want)-1) > eps {
			t.Errorf("Toffoli on |%03b>: expected |%03b>", in, want)
		}
	}
}

func TestApplyPermutation(t *testing.T) {
	src := rng.New(33)
	s := NewRandom(4, src)
	orig := s.Clone()
	// Cyclic shift by 3 is a bijection.
	s.ApplyPermutation(func(i uint64) uint64 { return (i + 3) % 16 })
	for i := uint64(0); i < 16; i++ {
		if cmplx.Abs(s.Amplitude((i+3)%16)-orig.Amplitude(i)) > eps {
			t.Fatalf("permutation misplaced amplitude %d", i)
		}
	}
	s.ApplyPermutation(func(i uint64) uint64 { return (i + 13) % 16 })
	if s.MaxDiff(orig) > eps {
		t.Error("inverse permutation did not restore the state")
	}
}

func TestMapRegister(t *testing.T) {
	src := rng.New(44)
	s := NewRandom(6, src)
	orig := s.Clone()
	// Add 5 mod 8 to the 3-bit field at position 2.
	s.MapRegister(2, 3, func(field, rest uint64) uint64 { return field + 5 })
	for i := uint64(0); i < 64; i++ {
		f := (i >> 2) & 7
		j := (i &^ (7 << 2)) | (((f + 5) & 7) << 2)
		if cmplx.Abs(s.Amplitude(j)-orig.Amplitude(i)) > eps {
			t.Fatalf("MapRegister misplaced index %d", i)
		}
	}
}

func TestApplyDiagonalFunc(t *testing.T) {
	src := rng.New(55)
	s := NewRandom(5, src)
	orig := s.Clone()
	s.ApplyDiagonalFunc(func(i uint64) complex128 {
		return cmplx.Exp(complex(0, float64(i)*0.1))
	})
	if math.Abs(s.Norm()-1) > eps {
		t.Error("diagonal func broke normalisation")
	}
	for i := uint64(0); i < s.Dim(); i++ {
		want := orig.Amplitude(i) * cmplx.Exp(complex(0, float64(i)*0.1))
		if cmplx.Abs(s.Amplitude(i)-want) > eps {
			t.Fatalf("phase wrong at %d", i)
		}
	}
}

func TestInnerAndFidelity(t *testing.T) {
	s := New(2)
	o := NewBasis(2, 1)
	if cmplx.Abs(s.Inner(o)) > eps {
		t.Error("orthogonal basis states have nonzero inner product")
	}
	if math.Abs(s.Fidelity(s.Clone())-1) > eps {
		t.Error("self fidelity != 1")
	}
}
