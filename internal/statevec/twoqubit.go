package statevec

import (
	"repro/internal/bitops"
)

// checkQubitPair panics when either qubit of a two-qubit kernel is out
// of range, with the same message the inline checks used to raise. It
// is the validation gate the kernelvalidate analyzer requires before a
// kernel's first amplitude access.
func (s *State) checkQubitPair(q0, q1 uint) {
	if q0 >= s.n || q1 >= s.n {
		panic("statevec: qubit out of range")
	}
}

// ApplyMatrix4 applies a dense 4x4 unitary to the qubit pair (q0, q1),
// where the matrix acts on the two-bit value (bit of q1 << 1) | bit of q0.
// General two-qubit gates (arbitrary couplers, fSim-style gates, fused
// controlled pairs) run through this kernel; the structured special cases
// (CNOT, CZ, CR) stay on the cheaper specialised paths.
//
//qemu:hotpath
func (s *State) ApplyMatrix4(m *[16]complex128, q0, q1 uint) {
	if q0 == q1 {
		panic("statevec: ApplyMatrix4 requires distinct qubits")
	}
	s.checkQubitPair(q0, q1)
	lo, hi := q0, q1
	if lo > hi {
		lo, hi = hi, lo
	}
	quarter := s.Dim() >> 2
	b0 := uint64(1) << q0
	b1 := uint64(1) << q1
	if s.parallelism(quarter) <= 1 {
		matrix4Chunk(s.amp, m, lo, hi, b0, b1, 0, quarter)
		return
	}
	s.parallelRange(quarter, func(start, end uint64) {
		matrix4Chunk(s.amp, m, lo, hi, b0, b1, start, end)
	})
}

// matrix4Chunk runs the dense 4x4 butterfly over flat indices
// [start, end); lo < hi are the insertion positions, b0/b1 the qubit
// bit masks.
func matrix4Chunk(amp []complex128, m *[16]complex128, lo, hi uint, b0, b1, start, end uint64) {
	for c := start; c < end; c++ {
		// Spread the counter around both qubit positions (ascending).
		base := bitops.InsertZeroBit(bitops.InsertZeroBit(c, lo), hi)
		i00 := base
		i01 := base | b0
		i10 := base | b1
		i11 := base | b0 | b1
		a00, a01 := amp[i00], amp[i01]
		a10, a11 := amp[i10], amp[i11]
		amp[i00] = m[0]*a00 + m[1]*a01 + m[2]*a10 + m[3]*a11
		amp[i01] = m[4]*a00 + m[5]*a01 + m[6]*a10 + m[7]*a11
		amp[i10] = m[8]*a00 + m[9]*a01 + m[10]*a10 + m[11]*a11
		amp[i11] = m[12]*a00 + m[13]*a01 + m[14]*a10 + m[15]*a11
	}
}

// ApplySwap exchanges qubits q0 and q1 by swapping amplitude pairs whose
// two bits differ — a quarter of the state moves, no arithmetic.
//
//qemu:hotpath
func (s *State) ApplySwap(q0, q1 uint) {
	if q0 == q1 {
		return
	}
	s.checkQubitPair(q0, q1)
	lo, hi := q0, q1
	if lo > hi {
		lo, hi = hi, lo
	}
	quarter := s.Dim() >> 2
	b0 := uint64(1) << q0
	b1 := uint64(1) << q1
	if s.parallelism(quarter) <= 1 {
		swapChunk(s.amp, lo, hi, b0, b1, 0, quarter)
		return
	}
	s.parallelRange(quarter, func(start, end uint64) {
		swapChunk(s.amp, lo, hi, b0, b1, start, end)
	})
}

// swapChunk exchanges the 01/10 amplitude pairs over flat indices
// [start, end).
func swapChunk(amp []complex128, lo, hi uint, b0, b1, start, end uint64) {
	for c := start; c < end; c++ {
		base := bitops.InsertZeroBit(bitops.InsertZeroBit(c, lo), hi)
		i01 := base | b0
		i10 := base | b1
		amp[i01], amp[i10] = amp[i10], amp[i01]
	}
}
