package statevec

import (
	"testing"

	"repro/internal/gates"
	"repro/internal/rng"
)

// cnotMatrix4 returns the 4x4 CNOT with control q0-slot, target q1-slot
// under the (q1 << 1 | q0) basis convention.
func cnotMatrix4() [16]complex128 {
	// |q1 q0>: control = q0 (column bit 0), target = q1 (bit 1).
	// 00 -> 00, 01 -> 11, 10 -> 10, 11 -> 01.
	var m [16]complex128
	m[0*4+0] = 1
	m[3*4+1] = 1
	m[2*4+2] = 1
	m[1*4+3] = 1
	return m
}

func TestApplyMatrix4CNOT(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 5; trial++ {
		n := uint(4 + src.Intn(3))
		q0 := uint(src.Intn(int(n)))
		q1 := uint(src.Intn(int(n)))
		if q0 == q1 {
			continue
		}
		st := NewRandom(n, src)
		want := st.Clone()
		want.ApplyGate(gates.CNOT(q0, q1))
		got := st.Clone()
		m := cnotMatrix4()
		got.ApplyMatrix4(&m, q0, q1)
		if d := got.MaxDiff(want); d > eps {
			t.Fatalf("n=%d q0=%d q1=%d: CNOT via Matrix4 differs by %g", n, q0, q1, d)
		}
	}
}

func TestApplyMatrix4KroneckerOfSingles(t *testing.T) {
	// (A on q0) then (B on q1) == (B ⊗ A) as a 4x4.
	src := rng.New(2)
	a := gates.Rx(0, 0.7).Matrix
	b := gates.Ry(0, 1.3).Matrix
	var m [16]complex128
	for i1 := 0; i1 < 2; i1++ {
		for i0 := 0; i0 < 2; i0++ {
			for j1 := 0; j1 < 2; j1++ {
				for j0 := 0; j0 < 2; j0++ {
					row := i1<<1 | i0
					col := j1<<1 | j0
					m[row*4+col] = b[i1*2+j1] * a[i0*2+j0]
				}
			}
		}
	}
	n := uint(5)
	q0, q1 := uint(1), uint(3)
	st := NewRandom(n, src)
	want := st.Clone()
	want.ApplyMatrix2(a, q0)
	want.ApplyMatrix2(b, q1)
	got := st.Clone()
	got.ApplyMatrix4(&m, q0, q1)
	if d := got.MaxDiff(want); d > eps {
		t.Fatalf("Kronecker two-qubit differs by %g", d)
	}
}

func TestApplySwap(t *testing.T) {
	src := rng.New(3)
	n := uint(6)
	st := NewRandom(n, src)
	want := st.Clone()
	for _, g := range gates.Swap(1, 4) {
		want.ApplyGate(g)
	}
	got := st.Clone()
	got.ApplySwap(1, 4)
	if d := got.MaxDiff(want); d > eps {
		t.Fatalf("ApplySwap differs from 3-CNOT swap by %g", d)
	}
	// Self-inverse, symmetric in arguments.
	got.ApplySwap(4, 1)
	if d := got.MaxDiff(st); d > eps {
		t.Fatal("double swap not identity")
	}
}

func TestApplyMatrix4NormPreserved(t *testing.T) {
	// A random unitary 4x4 (built from single-qubit unitaries and CNOT)
	// must preserve the norm.
	src := rng.New(4)
	st := NewRandom(6, src)
	m := cnotMatrix4()
	st.ApplyMatrix4(&m, 2, 5)
	if d := st.Norm() - 1; d > 1e-10 || d < -1e-10 {
		t.Fatalf("norm drifted by %g", d)
	}
}

func TestApplyMatrix4Panics(t *testing.T) {
	st := New(3)
	var m [16]complex128
	for _, f := range []func(){
		func() { st.ApplyMatrix4(&m, 1, 1) },
		func() { st.ApplyMatrix4(&m, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
