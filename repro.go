// Package repro is a high-performance quantum-circuit simulator and
// emulator in pure Go, reproducing Häner, Steiger, Smelyanskiy & Troyer,
// "High Performance Emulation of Quantum Circuits" (SC 2016,
// arXiv:1604.06460).
//
// # The entrypoint
//
// Open is the single constructor for every execution engine:
//
//	b, err := repro.Open(n, repro.WithAuto())                  // profile-driven: the system picks
//	b, err := repro.Open(n)                                    // the paper's fused simulator
//	b, err := repro.Open(n, repro.WithFusion(4))               // multi-qubit block fusion
//	b, err := repro.Open(n, repro.WithEmulation(repro.EmulateAuto)) // emulation dispatch
//	b, err := repro.Open(n, repro.WithNodes(8),                // distributed engine,
//	    repro.WithEmulation(repro.EmulateAuto))                //   emulating subroutines
//
// WithAuto is the paper's thesis as an API: Compile profiles the circuit,
// scores every candidate engine with the calibrated cost model
// (internal/perfmodel) and picks kind, node count, fusion width and the
// per-region emulate-vs-fuse decisions itself; Result.Selection reports
// the choice, every candidate's predicted cost, and the per-region
// verdicts.
//
// Every backend speaks the same interface (Run, ApplyGate,
// Sample/Measure, State, Stats, Close) and executes the same compiled
// Executables: Compile runs the explicit pass pipeline — recognize
// emulation regions, apply the cost model, fuse residual gate runs,
// schedule placement remaps on distributed targets — and Run is pure
// dispatch, returning a unified Result (emulated regions, fused blocks,
// communication rounds/bytes, wall time). See internal/backend for the
// pipeline contract.
//
// Two execution models are provided over the same 2^n state vector:
//
//   - gate-level simulation executes every elementary gate through
//     structure-specialised kernels (what a quantum computer would do);
//   - emulation replaces whole subroutines with classical shortcuts:
//     arithmetic becomes a basis-state permutation, the quantum Fourier
//     transform becomes a classical FFT (the four-step distributed FFT on
//     the cluster engine), phase estimation becomes dense linear algebra,
//     and measurement statistics are read off exactly.
//
// # Migration from the constructor zoo
//
// The pre-Open constructors remain as thin deprecated delegates:
//
//	NewSimulator(n)                  -> Open(n)
//	NewSimulatorWithOptions(n, o)    -> Open(n, WithFusion(o.FuseWidth), WithWorkers(o.Workers), ...)
//	NewEmulatingSimulator(n)         -> Open(n, WithEmulation(EmulateAuto))
//	NewDistributedSimulator(n, o)    -> Open(n, WithNodes(o.Nodes), WithFusion(o.FuseWidth), ...)
//	NewEmulator(n)                   -> Open(n, WithEmulation(EmulateAuto)); the imperative
//	                                    shortcut methods stay on core.Emulator
//	NewCluster(n, p)                 -> Open(n, WithNodes(p)); the raw machine stays
//	                                    available via internal/cluster
//
// The full API lives in the internal packages (backend, core, sim,
// recognize, fuse, statevec, circuit, gates, qasm, qft, qpe, revlib,
// cluster, linalg, fft, perfmodel).
package repro

import (
	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fuse"
	"repro/internal/gates"
	"repro/internal/noise"
	"repro/internal/recognize"
	"repro/internal/sim"
	"repro/internal/statevec"
)

// Backend is the uniform execution interface over every engine: the local
// fused simulator, the qhipster-class and sparse baselines, and the
// distributed cluster engine. See internal/backend.
type Backend = backend.Backend

// Target is a backend's execution shape — what Compile needs to build an
// Executable the backend accepts.
type Target = backend.Target

// Executable is a compiled circuit: recognised emulation ops plus fused
// (and, on distributed targets, placement-scheduled) gate segments. It is
// immutable and reusable across runs.
type Executable = backend.Executable

// Result is the unified outcome of one run: emulated regions (and their
// substrates), fused blocks, communication rounds/bytes, wall time.
type Result = backend.Result

// BackendStats is the cumulative counter snapshot every backend reports.
type BackendStats = backend.Stats

// Selection is the auto backend's explainable output: the chosen target,
// its predicted cost, every candidate's score, and the per-region
// emulate-vs-fuse verdicts. Result.Selection carries it on runs compiled
// for an auto target.
type Selection = backend.Selection

// Candidate is one execution shape the auto backend scored.
type Candidate = backend.Candidate

// RegionVerdict is the cost model's per-region emulate-vs-fuse decision.
type RegionVerdict = backend.RegionVerdict

// OpenOption configures Open.
type OpenOption func(*backend.Target)

// WithAuto delegates engine choice to the profile-driven selector: at
// Compile time the circuit is profiled (width, depth, diagonal fraction,
// recognised-region coverage, per-width fused sweep counts) and the
// calibrated cost model picks kind, node count, fusion width and the
// per-region emulate-vs-fuse verdicts — no user thresholds. Other shape
// options (WithFusion, WithNodes, WithEmulation, WithDiagonalCutoff,
// kernel selectors) are ignored on an auto target; WithWorkers still
// applies. Calibrate the model once with `qemu-model -calibrate` to
// score with this machine's constants instead of the baked-in defaults.
func WithAuto() OpenOption {
	return func(t *backend.Target) { t.Auto = true }
}

// WithFusion enables multi-qubit block fusion at the given width (>= 2);
// 0 or 1 keeps the classic same-target fusion. On distributed backends
// the width is clamped to the per-node shard capacity.
func WithFusion(width int) OpenOption {
	return func(t *backend.Target) { t.FuseWidth = width }
}

// WithEmulation selects the emulation-dispatch mode: recognised
// subroutines (annotated regions; in Auto mode also pattern-matched QFT
// ladders, reversible arithmetic, phase oracles, diagonal runs) execute
// as classical shortcuts instead of gate by gate — on the distributed
// engine too, where QFT regions lower to the four-step distributed FFT
// and arithmetic to cluster-wide permutations.
func WithEmulation(mode EmulateMode) OpenOption {
	return func(t *backend.Target) { t.Emulate = mode }
}

// WithNodes shards the register across p emulated cluster nodes (power of
// two) running the communication-avoiding placement scheduler. p <= 1
// keeps the single-address-space engine.
func WithNodes(p int) OpenOption {
	return func(t *backend.Target) {
		t.Nodes = p
		if p > 1 {
			t.Kind = backend.Cluster
		}
	}
}

// WithMaxLocalQubits caps the per-node shard size of a distributed
// backend: the node count is raised (beyond WithNodes if needed) until
// each node holds at most 2^l amplitudes.
func WithMaxLocalQubits(l uint) OpenOption {
	return func(t *backend.Target) {
		t.MaxLocalQubits = l
		t.Kind = backend.Cluster
	}
}

// WithWorkers caps the state-vector kernel parallelism (per shard on
// distributed backends); 1 forces the single-threaded variants.
func WithWorkers(k int) OpenOption {
	return func(t *backend.Target) { t.Workers = k }
}

// WithGenericKernels selects the qHiPSTER-class structure-blind baseline:
// every gate through the dense 2x2 kernel, no fusion.
func WithGenericKernels() OpenOption {
	return func(t *backend.Target) { t.Kind = backend.Generic }
}

// WithSparseKernels selects the LIQUi|>-class baseline: every gate as an
// explicit sparse matrix-vector product.
func WithSparseKernels() OpenOption {
	return func(t *backend.Target) { t.Kind = backend.Sparse }
}

// WithDiagonalCutoff is the manual override of the emulation cost model:
// a recognised diagonal run with fewer than minGates gates whose support
// fits in maxWidth qubits stays on the fused gate path (which executes it
// in the same single sweep). Zero values pick the defaults; a negative
// minGates disables the cutoff so every recognised run dispatches. Under
// WithAuto the static cutoff is replaced by per-region model verdicts
// and this option is ignored.
func WithDiagonalCutoff(minGates int, maxWidth uint) OpenOption {
	return func(t *backend.Target) {
		t.DiagMinGates = minGates
		t.DiagMaxWidth = maxWidth
	}
}

// Open returns a Backend over a fresh |0...0> register of n qubits,
// configured by the options. It is the single entrypoint for every
// engine; see the package comment for the option-to-engine mapping.
func Open(n uint, opts ...OpenOption) (Backend, error) {
	t := backend.Target{NumQubits: n, Kind: backend.Fused}
	for _, o := range opts {
		o(&t)
	}
	return backend.New(t)
}

// Compile runs the pass pipeline (recognize -> cost model -> fuse ->
// placement) over a circuit for a backend's Target, returning an
// Executable reusable across runs: b.Run(x) executes it. Use
// backend.Execute (or b.Run(must(Compile(...)))) for one-shot runs.
func Compile(c *Circuit, t Target) (*Executable, error) {
	return backend.Compile(c, t)
}

// EncodeExecutable serialises a compiled Executable to the versioned
// binary artifact format (magic/version/crc container; see
// internal/backend's codec) so it can persist to disk or warm-start a
// serving cache.
func EncodeExecutable(x *Executable) ([]byte, error) { return x.Encode() }

// DecodeExecutable parses an encoded Executable, rebuilding its fusion
// plans and communication schedules, then runs the structural verifier
// over the result: crc32 catches bit rot, VerifyExecutable catches
// semantically corrupt artifacts whose bytes are internally well-formed.
// It returns an error — never panics — on truncated, corrupt or
// version-skewed input.
func DecodeExecutable(data []byte) (*Executable, error) {
	x, err := backend.Decode(data)
	if err != nil {
		return nil, err
	}
	if err := backend.VerifyExecutable(x); err != nil {
		return nil, err
	}
	return x, nil
}

// VerifyExecutable checks the structural invariants of a compiled or
// decoded Executable — unit contiguity, unitary gate matrices, op
// payload shapes, schedule round accounting, summary counters — and
// returns nil exactly when the artifact is safe to execute. Decode paths
// (DecodeExecutable, the serving cache's warm start and upload
// admission) call it automatically; call it directly on executables from
// any other source.
func VerifyExecutable(x *Executable) error { return backend.VerifyExecutable(x) }

// Fingerprint returns the canonical cache key of compiling c for t: two
// (circuit, target) pairs share a fingerprint exactly when Compile
// produces interchangeable executables (the Workers run-time knob is
// excluded). cmd/qemu-serve keys its artifact cache with it.
func Fingerprint(c *Circuit, t Target) (string, error) { return backend.Fingerprint(c, t) }

// Channel is one single-qubit noise channel (Pauli flip, depolarizing,
// amplitude or phase damping) with its probability; see
// internal/circuit.
type Channel = circuit.Channel

// ChannelKind enumerates the supported channels.
type ChannelKind = circuit.ChannelKind

// Noise channel kinds for Channel.Kind.
const (
	NoiseX            = circuit.FlipX
	NoiseY            = circuit.FlipY
	NoiseZ            = circuit.FlipZ
	NoiseDepolarizing = circuit.Depolarizing
	NoiseAmpDamp      = circuit.AmplitudeDamping
	NoisePhaseDamp    = circuit.PhaseDamping
)

// NoiseModel is a circuit's attached noise: global after-each-gate
// channels plus per-gate attachments; see internal/circuit. Build it
// through Circuit.SetGlobalNoise and Circuit.AttachNoise.
type NoiseModel = circuit.NoiseModel

// TrajectoryOptions configure a stochastic-trajectory batch: trajectory
// count, master seed, parallel workers. See internal/noise.
type TrajectoryOptions = noise.Options

// TrajectoryResult carries a batch's per-trajectory outcomes and jump
// counts.
type TrajectoryResult = noise.Result

// WithNoise attaches a global after-each-gate channel, given as a
// "kind:probability" spec (e.g. "depolarizing:0.001"), to a circuit.
// Compile folds the model into the Executable's noise plan;
// RunTrajectories replays it. An empty spec is a no-op.
func WithNoise(c *Circuit, spec string) error { return noise.Attach(c, spec) }

// ParseNoiseSpec parses a "kind:probability" channel spec — the grammar
// shared by WithNoise, the qemu-run -noise flag and the serving API.
func ParseNoiseSpec(spec string) (Channel, error) { return noise.ParseSpec(spec) }

// RunTrajectories evolves a batch of stochastic wavefunctions of a
// compiled Executable, sampling one Kraus branch per noise insertion
// point per trajectory, and returns one measured outcome per
// trajectory. The batch is seed-deterministic: one seed yields the same
// outcomes whatever the worker count. See internal/noise.
func RunTrajectories(x *Executable, opts TrajectoryOptions) (*TrajectoryResult, error) {
	return noise.Run(x, opts)
}

// Emulator is the paper's primary contribution; see internal/core. Its
// imperative shortcut methods (Multiply, ApplyPhaseOracle, QFTRange, ...)
// complement the circuit-level dispatch of Open's backends.
type Emulator = core.Emulator

// Simulator is the optimised gate-level simulator; see internal/sim.
type Simulator = sim.Simulator

// Circuit is an ordered gate sequence; see internal/circuit.
type Circuit = circuit.Circuit

// Gate is a (controlled) single-qubit gate; see internal/gates.
type Gate = gates.Gate

// State is the dense 2^n-amplitude wavefunction; see internal/statevec.
type State = statevec.State

// Cluster is the emulated distributed machine; see internal/cluster.
type Cluster = cluster.Cluster

// ClusterStats is a point-in-time copy of a cluster's communication
// counters (bytes, messages, exchange and remap rounds).
type ClusterStats = cluster.StatsSnapshot

// DistributedSimulator runs circuits sharded across emulated cluster
// nodes through the communication-avoiding placement scheduler; see
// internal/sim and internal/cluster.
type DistributedSimulator = sim.Distributed

// ClusterSchedule is a communication plan batching remote-qubit work into
// all-to-all remap rounds; see internal/cluster.
type ClusterSchedule = cluster.Schedule

// SimOptions selects the simulator's optimisations (kernel specialisation,
// same-target fusion, multi-qubit block fusion); see internal/sim.
type SimOptions = sim.Options

// FusionPlan is a fused execution schedule produced by the
// commutation-aware gate-fusion scheduler; see internal/fuse.
type FusionPlan = fuse.Plan

// EmulateMode selects the emulation-dispatch behaviour: EmulateOff
// (default), EmulateAnnotated (trust circuit region annotations) or
// EmulateAuto (also pattern-match unannotated QFT ladders, revlib
// arithmetic shapes, phase oracles and diagonal runs). See
// internal/recognize.
type EmulateMode = sim.EmulateMode

// Emulation-dispatch modes for WithEmulation and SimOptions.Emulate.
const (
	EmulateOff       = sim.EmulateOff
	EmulateAnnotated = sim.EmulateAnnotated
	EmulateAuto      = sim.EmulateAuto
)

// EmulationPlan is a dispatch schedule interleaving recognised emulator
// shortcuts with gate-level segments; see internal/recognize.
type EmulationPlan = recognize.Plan

// Region annotates a circuit gate range as a named subroutine the
// emulation dispatcher can lower; see internal/recognize for the
// vocabulary.
type Region = circuit.Region

// NewEmulator returns an emulator over a fresh |0...0> register of n
// qubits.
//
// Deprecated: for circuit-level programs use Open(n,
// WithEmulation(EmulateAuto)); NewEmulator remains for the imperative
// shortcut methods of core.Emulator.
func NewEmulator(n uint) *Emulator { return core.New(n) }

// NewSimulator returns the optimised gate-level simulator over a fresh
// register of n qubits.
//
// Deprecated: use Open(n).
func NewSimulator(n uint) *Simulator { return sim.New(n) }

// NewSimulatorWithOptions returns a simulator with explicit optimisation
// settings, e.g. SimOptions{Specialize: true, FuseWidth: 4} for
// multi-qubit block fusion.
//
// Deprecated: use Open(n, WithFusion(w), WithWorkers(k), ...).
func NewSimulatorWithOptions(n uint, opts SimOptions) *Simulator {
	return sim.NewWithOptions(n, opts)
}

// PlanFusion builds a width-k fused execution schedule for c, reusable
// across runs via Simulator.RunPlan; see internal/fuse. Open's backends
// plan fusion through Compile instead.
func PlanFusion(c *Circuit, width int) *FusionPlan { return fuse.New(c, width) }

// NewEmulatingSimulator returns a simulator with emulation dispatch in
// Auto mode on top of the default optimisations.
//
// Deprecated: use Open(n, WithEmulation(EmulateAuto)).
func NewEmulatingSimulator(n uint) *Simulator {
	return sim.NewWithOptions(n, sim.Options{Specialize: true, Fuse: true, Emulate: sim.EmulateAuto})
}

// PlanEmulation analyses a circuit for emulatable subroutines at the
// given mode; the plan is reusable across runs via
// Simulator.RunEmulationPlan. Open's backends run the same analysis as
// the first pass of Compile.
func PlanEmulation(c *Circuit, mode EmulateMode) *EmulationPlan {
	return sim.PlanEmulation(c, mode)
}

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n uint) *Circuit { return circuit.New(n) }

// NewCluster returns a p-node emulated distributed machine holding an
// n-qubit register.
//
// Deprecated: use Open(n, WithNodes(p)); the raw machine remains
// available via internal/cluster for placement-level work.
func NewCluster(n uint, p int) (*Cluster, error) { return cluster.New(n, p) }

// NewDistributedSimulator returns a simulator whose register is sharded
// across emulated cluster nodes, e.g. SimOptions{Nodes: 8, FuseWidth: 4}.
// Emulation dispatch (Options.Emulate) is honoured: recognised regions
// lower to the distributed substrates.
//
// Deprecated: use Open(n, WithNodes(p), WithFusion(w),
// WithEmulation(mode)).
func NewDistributedSimulator(n uint, opts SimOptions) (*DistributedSimulator, error) {
	return sim.NewDistributed(n, opts)
}

// PlanCluster builds the distributed communication schedule for a fusion
// plan on a (n, localQubits) cluster shape without executing it — the way
// to inspect how many remap rounds a circuit needs before committing to a
// node count. Compile does this per gate segment for distributed targets.
func PlanCluster(p *FusionPlan, n, localQubits uint) (*ClusterSchedule, error) {
	return cluster.BuildSchedule(p, n, localQubits, true)
}
