// Package repro is a high-performance quantum-circuit simulator and
// emulator in pure Go, reproducing Häner, Steiger, Smelyanskiy & Troyer,
// "High Performance Emulation of Quantum Circuits" (SC 2016,
// arXiv:1604.06460).
//
// Two execution models are provided over the same 2^n state vector:
//
//   - the Simulator executes every elementary gate of a circuit through
//     structure-specialised kernels (what a quantum computer would do,
//     gate by gate);
//   - the Emulator replaces whole subroutines with classical shortcuts:
//     arithmetic becomes a basis-state permutation, the quantum Fourier
//     transform becomes a classical FFT, phase estimation becomes dense
//     linear algebra, and measurement statistics are read off exactly.
//
// The facade re-exports the most commonly used constructors; the full API
// lives in the internal packages (core, sim, recognize, fuse, statevec,
// circuit, gates, qasm, qft, qpe, revlib, cluster, linalg, fft,
// perfmodel).
package repro

import (
	"repro/internal/circuit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fuse"
	"repro/internal/gates"
	"repro/internal/recognize"
	"repro/internal/sim"
	"repro/internal/statevec"
)

// Emulator is the paper's primary contribution; see internal/core.
type Emulator = core.Emulator

// Simulator is the optimised gate-level simulator; see internal/sim.
type Simulator = sim.Simulator

// Circuit is an ordered gate sequence; see internal/circuit.
type Circuit = circuit.Circuit

// Gate is a (controlled) single-qubit gate; see internal/gates.
type Gate = gates.Gate

// State is the dense 2^n-amplitude wavefunction; see internal/statevec.
type State = statevec.State

// Cluster is the emulated distributed machine; see internal/cluster.
type Cluster = cluster.Cluster

// ClusterStats is a point-in-time copy of a cluster's communication
// counters (bytes, messages, exchange and remap rounds).
type ClusterStats = cluster.StatsSnapshot

// DistributedSimulator runs circuits sharded across emulated cluster
// nodes through the communication-avoiding placement scheduler; see
// internal/sim and internal/cluster.
type DistributedSimulator = sim.Distributed

// ClusterSchedule is a communication plan batching remote-qubit work into
// all-to-all remap rounds; see internal/cluster.
type ClusterSchedule = cluster.Schedule

// SimOptions selects the simulator's optimisations (kernel specialisation,
// same-target fusion, multi-qubit block fusion); see internal/sim.
type SimOptions = sim.Options

// FusionPlan is a fused execution schedule produced by the
// commutation-aware gate-fusion scheduler; see internal/fuse.
type FusionPlan = fuse.Plan

// EmulateMode selects the emulation-dispatch behaviour of SimOptions:
// EmulateOff (default), EmulateAnnotated (trust circuit region
// annotations) or EmulateAuto (also pattern-match unannotated QFT
// ladders, revlib arithmetic shapes, phase oracles and diagonal runs).
// See internal/recognize.
type EmulateMode = sim.EmulateMode

// Emulation-dispatch modes for SimOptions.Emulate.
const (
	EmulateOff       = sim.EmulateOff
	EmulateAnnotated = sim.EmulateAnnotated
	EmulateAuto      = sim.EmulateAuto
)

// EmulationPlan is a dispatch schedule interleaving recognised emulator
// shortcuts with gate-level segments; see internal/recognize.
type EmulationPlan = recognize.Plan

// Region annotates a circuit gate range as a named subroutine the
// emulation dispatcher can lower; see internal/recognize for the
// vocabulary.
type Region = circuit.Region

// NewEmulator returns an emulator over a fresh |0...0> register of n
// qubits.
func NewEmulator(n uint) *Emulator { return core.New(n) }

// NewSimulator returns the optimised gate-level simulator over a fresh
// register of n qubits.
func NewSimulator(n uint) *Simulator { return sim.New(n) }

// NewSimulatorWithOptions returns a simulator with explicit optimisation
// settings, e.g. SimOptions{Specialize: true, FuseWidth: 4} for
// multi-qubit block fusion.
func NewSimulatorWithOptions(n uint, opts SimOptions) *Simulator {
	return sim.NewWithOptions(n, opts)
}

// PlanFusion builds a width-k fused execution schedule for c, reusable
// across runs via Simulator.RunPlan; see internal/fuse.
func PlanFusion(c *Circuit, width int) *FusionPlan { return fuse.New(c, width) }

// NewEmulatingSimulator returns a simulator with emulation dispatch in
// Auto mode on top of the default optimisations: circuits run through the
// paper's Section 3 shortcuts wherever subroutines are annotated or
// recognised, and through the fused gate kernels elsewhere.
func NewEmulatingSimulator(n uint) *Simulator {
	return sim.NewWithOptions(n, sim.Options{Specialize: true, Fuse: true, Emulate: sim.EmulateAuto})
}

// PlanEmulation analyses a circuit for emulatable subroutines at the
// given mode; the plan is reusable across runs via
// Simulator.RunEmulationPlan.
func PlanEmulation(c *Circuit, mode EmulateMode) *EmulationPlan {
	return sim.PlanEmulation(c, mode)
}

// NewCircuit returns an empty circuit over n qubits.
func NewCircuit(n uint) *Circuit { return circuit.New(n) }

// NewCluster returns a p-node emulated distributed machine holding an
// n-qubit register.
func NewCluster(n uint, p int) (*Cluster, error) { return cluster.New(n, p) }

// NewDistributedSimulator returns a simulator whose register is sharded
// across emulated cluster nodes, e.g. SimOptions{Nodes: 8, FuseWidth: 4}.
// Circuits run through the communication-avoiding scheduler: remote-qubit
// gates are batched into all-to-all placement-remap rounds instead of
// exchanging shards gate by gate.
func NewDistributedSimulator(n uint, opts SimOptions) (*DistributedSimulator, error) {
	return sim.NewDistributed(n, opts)
}

// PlanCluster builds the distributed communication schedule for a fusion
// plan on a (n, localQubits) cluster shape without executing it — the way
// to inspect how many remap rounds a circuit needs before committing to a
// node count.
func PlanCluster(p *FusionPlan, n, localQubits uint) (*ClusterSchedule, error) {
	return cluster.BuildSchedule(p, n, localQubits, true)
}
