package repro_test

import (
	"math"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/qft"
	"repro/internal/revlib"
	"repro/internal/rng"
	"repro/internal/statevec"
)

// TestFacadeEndToEnd drives the public facade through a small program
// mixing gate-level execution and every emulation shortcut.
func TestFacadeEndToEnd(t *testing.T) {
	e := repro.NewEmulator(6)
	for q := uint(0); q < 4; q++ {
		e.ApplyGate(gates.H(q))
	}
	e.Multiply(0, 2, 4, 2)
	e.QFTRange(0, 4)
	e.InverseQFTRange(0, 4)
	e.ApplyPhaseOracle(func(x uint64) complex128 { return 1 })
	var sum float64
	for _, p := range e.Probabilities() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

// TestSimulatorEmulatorEquivalence is the repository-level statement of the
// paper's premise: for any program expressible both ways, simulator and
// emulator agree bit-for-bit (up to floating-point roundoff).
func TestSimulatorEmulatorEquivalence(t *testing.T) {
	const m = 3
	l := revlib.NewMultiplierLayout(m)
	n := l.NumQubits()

	s := repro.NewSimulator(n)
	e := repro.NewEmulator(n)
	for q := uint(0); q < 2*m; q++ {
		s.ApplyGate(gates.H(q))
		e.ApplyGate(gates.H(q))
	}
	s.Run(revlib.BuildMultiplier(l))
	e.Multiply(0, m, 2*m, m)

	s.Run(qft.Circuit(n))
	e.QFT()

	if d := s.State().MaxDiff(e.State()); d > 1e-9 {
		t.Fatalf("simulator and emulator diverge by %g", d)
	}
}

// TestClusterFacade exercises the distributed substrate through the facade.
func TestClusterFacade(t *testing.T) {
	c, err := repro.NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	st := statevec.NewRandom(8, src)
	if err := c.LoadState(st); err != nil {
		t.Fatal(err)
	}
	c.Run(qft.CircuitNoSwap(8))
	if err := c.EmulateInverseQFT(); err != nil {
		t.Fatal(err)
	}
	// CircuitNoSwap output is bit-reversed, so the inverse FFT does not
	// undo it; just verify the norm survived the round trip.
	if d := math.Abs(c.Gather().Norm() - 1); d > 1e-9 {
		t.Fatalf("cluster norm drifted by %g", d)
	}
}

// TestDistributedFacade drives the distributed simulator and schedule
// planner through the facade.
func TestDistributedFacade(t *testing.T) {
	circ := qft.Circuit(9)
	d, err := repro.NewDistributedSimulator(9, repro.SimOptions{Nodes: 4, FuseWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(circ)

	ref := repro.NewSimulator(9)
	ref.Run(circ)
	if diff := d.State().MaxDiff(ref.State()); diff > 1e-10 {
		t.Fatalf("distributed facade diverges from simulator by %g", diff)
	}

	sched, err := repro.PlanCluster(repro.PlanFusion(circ, 3), 9, d.Cluster().L)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Rounds == 0 {
		t.Fatal("QFT on 4 nodes scheduled with zero communication rounds")
	}
	if got := d.Cluster().Stats.Rounds.Load(); got != uint64(sched.Rounds) {
		t.Fatalf("run used %d rounds, schedule planned %d", got, sched.Rounds)
	}
}

// TestOpenFacade drives the unified entrypoint: one constructor for the
// fused simulator, the baselines and the distributed engine, all running
// the same compiled executable shape and reporting a uniform Result.
func TestOpenFacade(t *testing.T) {
	const n = 9
	circ := repro.NewCircuit(n)
	for q := uint(0); q < n; q++ {
		circ.Append(gates.H(q))
	}
	circ.Extend(qft.Circuit(n))

	ref, err := repro.Open(n)
	if err != nil {
		t.Fatal(err)
	}
	x, err := repro.Compile(circ, ref.Target())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(x); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		opts []repro.OpenOption
	}{
		{"fusion", []repro.OpenOption{repro.WithFusion(4)}},
		{"emulating", []repro.OpenOption{repro.WithEmulation(repro.EmulateAuto)}},
		{"generic", []repro.OpenOption{repro.WithGenericKernels()}},
		{"distributed", []repro.OpenOption{repro.WithNodes(4), repro.WithFusion(3)}},
		{"distributed-emulating", []repro.OpenOption{
			repro.WithNodes(4), repro.WithEmulation(repro.EmulateAuto)}},
		{"capped-shards", []repro.OpenOption{
			repro.WithMaxLocalQubits(7), repro.WithEmulation(repro.EmulateAnnotated)}},
	} {
		b, err := repro.Open(n, tc.opts...)
		if err != nil {
			t.Fatalf("%s: Open failed: %v", tc.name, err)
		}
		bx, err := repro.Compile(circ, b.Target())
		if err != nil {
			t.Fatalf("%s: Compile failed: %v", tc.name, err)
		}
		res, err := b.Run(bx)
		if err != nil {
			t.Fatalf("%s: Run failed: %v", tc.name, err)
		}
		if res.TotalGates != circ.Len() {
			t.Fatalf("%s: result covers %d gates, circuit has %d", tc.name, res.TotalGates, circ.Len())
		}
		if d := b.State().MaxDiff(ref.State()); d > 1e-10 {
			t.Fatalf("%s: diverges from the reference backend by %g", tc.name, d)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("%s: Close failed: %v", tc.name, err)
		}
	}
}

// TestOpenDistributedEmulationNoLongerErrors pins the acceptance
// criterion directly: the distributed backend accepts every emulation
// mode and emulates the QFT region.
func TestOpenDistributedEmulationNoLongerErrors(t *testing.T) {
	for _, mode := range []repro.EmulateMode{repro.EmulateOff, repro.EmulateAnnotated, repro.EmulateAuto} {
		b, err := repro.Open(10, repro.WithNodes(2), repro.WithEmulation(mode))
		if err != nil {
			t.Fatalf("Open(10, WithNodes(2), WithEmulation(%v)) errored: %v", mode, err)
		}
		res, err := repro.Compile(qft.Circuit(10), b.Target())
		if err != nil {
			t.Fatal(err)
		}
		r, err := b.Run(res)
		if err != nil {
			t.Fatal(err)
		}
		if mode != repro.EmulateOff && len(r.Emulated) == 0 {
			t.Fatalf("mode %v emulated nothing", mode)
		}
	}
}

// TestCircuitFacade builds and runs a circuit through the facade types.
func TestCircuitFacade(t *testing.T) {
	c := repro.NewCircuit(3)
	c.Append(gates.H(0), gates.CNOT(0, 1), gates.Toffoli(0, 1, 2))
	s := repro.NewSimulator(3)
	s.Run(c)
	p := s.State().Probabilities()
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[7]-0.5) > 1e-12 {
		t.Fatalf("GHZ-like state wrong: %v", p)
	}
}

// TestDivideFacade checks the division shortcut through the facade.
func TestDivideFacade(t *testing.T) {
	const m = 3
	e := repro.NewEmulator(4*m + 2)
	// a = 7, b = 3 -> q = 2, r = 1.
	e.ApplyClassicalFunc(func(i uint64) uint64 {
		switch i {
		case 0:
			return 7 | 3<<(2*m)
		case 7 | 3<<(2*m):
			return 0
		}
		return i
	})
	e.Divide(core.DivideLayout{M: m, RPos: 0, BPos: 2 * m, QPos: 3 * m})
	want := uint64(1) | 3<<(2*m) | 2<<(3*m)
	if p := e.Probabilities()[want]; math.Abs(p-1) > 1e-12 {
		t.Fatalf("7/3 readout wrong (p=%v at expected index)", p)
	}
}
